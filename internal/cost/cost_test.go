package cost

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.Charge(IP, 10)
	m.ChargePerMbuf(PFXunet, 3)
	m.Reset()
	if got := m.Count(IP); got != 0 {
		t.Fatalf("nil meter Count = %d, want 0", got)
	}
	if got := m.Total(); got != 0 {
		t.Fatalf("nil meter Total = %d, want 0", got)
	}
	if s := m.Snapshot(); len(s) != 0 {
		t.Fatalf("nil meter Snapshot = %v, want empty", s)
	}
}

func TestChargeAndCount(t *testing.T) {
	m := NewMeter()
	m.Charge(IP, IPRecvCost)
	m.Charge(ProtoATM, ProtoATMRecvTotal)
	m.Charge(OrcDriver, OrcRecvDispatch)
	m.Charge(PFXunet, PFXunetRecvFixed)
	if got := m.Count(IP); got != 57 {
		t.Errorf("IP count = %d, want 57", got)
	}
	if got := m.Count(ProtoATM); got != 36 {
		t.Errorf("IPPROTO_ATM count = %d, want 36", got)
	}
	if got := m.Total(); got != 57+36+2+99 {
		t.Errorf("Total = %d, want 194", got)
	}
}

func TestPaperConstantsMatchTable1(t *testing.T) {
	// The decomposed per-operation charges must sum to the per-layer
	// totals the paper reports in Table 1.
	if ProtoATMRecvTotal != 36 {
		t.Errorf("IPPROTO_ATM receive total = %d, want 36", ProtoATMRecvTotal)
	}
	if ProtoATMSendFixed != 58 {
		t.Errorf("IPPROTO_ATM send fixed = %d, want 58", ProtoATMSendFixed)
	}
	if PFXunetRecvFixed != 99 {
		t.Errorf("PF_XUNET receive fixed = %d, want 99", PFXunetRecvFixed)
	}
	if RouterSwitchTotal != 39 {
		t.Errorf("router switching total = %d, want 39", RouterSwitchTotal)
	}
	recvTotal := IPRecvCost + ProtoATMRecvTotal + OrcRecvDispatch + PFXunetRecvFixed
	if recvTotal != 194 {
		t.Errorf("host receive fixed total = %d, want 194", recvTotal)
	}
	sendTotal := IPSendCost + ProtoATMSendFixed
	if sendTotal != 119 {
		t.Errorf("host send fixed total = %d, want 119", sendTotal)
	}
}

func TestChargePerMbuf(t *testing.T) {
	m := NewMeter()
	m.ChargePerMbuf(PFXunet, 5)
	if got := m.Count(PFXunet); got != 40 {
		t.Errorf("5 mbufs charged %d, want 40", got)
	}
	m.ChargePerMbuf(PFXunet, 0)
	m.ChargePerMbuf(PFXunet, -3)
	if got := m.Count(PFXunet); got != 40 {
		t.Errorf("zero/negative mbuf charge changed count to %d", got)
	}
}

func TestNonPositiveChargeIgnored(t *testing.T) {
	m := NewMeter()
	m.Charge(IP, 0)
	m.Charge(IP, -5)
	if got := m.Count(IP); got != 0 {
		t.Errorf("non-positive charges recorded %d", got)
	}
}

func TestReset(t *testing.T) {
	m := NewMeter()
	m.Charge(Switch, 100)
	m.Charge(Kernel, 7)
	m.Reset()
	if m.Total() != 0 {
		t.Errorf("Total after Reset = %d, want 0", m.Total())
	}
}

func TestSnapshotSub(t *testing.T) {
	m := NewMeter()
	m.Charge(IP, 61)
	before := m.Snapshot()
	m.Charge(IP, 61)
	m.Charge(ProtoATM, 58)
	after := m.Snapshot()
	d := after.Sub(before)
	if d[IP] != 61 {
		t.Errorf("diff IP = %d, want 61", d[IP])
	}
	if d[ProtoATM] != 58 {
		t.Errorf("diff IPPROTO_ATM = %d, want 58", d[ProtoATM])
	}
	if d.Total() != 119 {
		t.Errorf("diff total = %d, want 119", d.Total())
	}
}

func TestSnapshotSubDropsUnchanged(t *testing.T) {
	m := NewMeter()
	m.Charge(IP, 10)
	s := m.Snapshot()
	d := s.Sub(s)
	if len(d) != 0 {
		t.Errorf("self-diff = %v, want empty", d)
	}
}

func TestSnapshotSubNegative(t *testing.T) {
	prev := Snapshot{IP: 100}
	cur := Snapshot{}
	d := cur.Sub(prev)
	if d[IP] != -100 {
		t.Errorf("diff against vanished component = %d, want -100", d[IP])
	}
}

func TestComponentString(t *testing.T) {
	if PFXunet.String() != "PF_XUNET" {
		t.Errorf("PFXunet.String() = %q", PFXunet.String())
	}
	if Component(200).String() != "Component(200)" {
		t.Errorf("out-of-range String() = %q", Component(200).String())
	}
}

func TestComponentsOrder(t *testing.T) {
	cs := Components()
	if len(cs) != int(numComponents) {
		t.Fatalf("Components() has %d entries, want %d", len(cs), numComponents)
	}
	for i, c := range cs {
		if int(c) != i {
			t.Errorf("Components()[%d] = %v", i, c)
		}
	}
}

func TestSnapshotString(t *testing.T) {
	m := NewMeter()
	m.Charge(IP, 57)
	m.Charge(PFXunet, 99)
	s := m.Snapshot().String()
	if s == "" {
		t.Fatal("empty snapshot string")
	}
	// PF_XUNET must render before IP (table order).
	if pf, ip := indexOf(s, "PF_XUNET"), indexOf(s, "IP"); pf < 0 || ip < 0 || pf > ip {
		t.Errorf("table order wrong:\n%s", s)
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestConcurrentCharging(t *testing.T) {
	m := NewMeter()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.Charge(Switch, 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Count(Switch); got != workers*each {
		t.Errorf("concurrent count = %d, want %d", got, workers*each)
	}
}

// Property: for any sequence of positive charges, Total equals the sum of
// per-component counts, and Snapshot agrees with Count.
func TestQuickMeterConsistency(t *testing.T) {
	f := func(charges []uint16) bool {
		m := NewMeter()
		var want int64
		for i, ch := range charges {
			c := Component(i % int(numComponents))
			m.Charge(c, int64(ch))
			want += int64(ch)
		}
		if m.Total() != want {
			return false
		}
		s := m.Snapshot()
		if s.Total() != want {
			return false
		}
		for c, v := range s {
			if m.Count(c) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Sub is the inverse of charging — (after − before) totals the
// charges made between the snapshots.
func TestQuickSnapshotSub(t *testing.T) {
	f := func(first, second []uint8) bool {
		m := NewMeter()
		for i, ch := range first {
			m.Charge(Component(i%int(numComponents)), int64(ch))
		}
		before := m.Snapshot()
		var delta int64
		for i, ch := range second {
			m.Charge(Component(i%int(numComponents)), int64(ch))
			delta += int64(ch)
		}
		d := m.Snapshot().Sub(before)
		return d.Total() == delta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
