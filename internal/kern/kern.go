// Package kern simulates the slice of the IRIX kernel the paper's
// extensions live in: processes with exit processing, per-process file
// descriptor tables (with TIME_WAIT retention of closed IPC
// descriptors), a protocol-family registry with soisdisconnected, the
// /dev/anand pseudo-device, and kernel-to-signaling indications for
// process termination, bind and connect.
//
// The pseudo-device reproduces §5.3 and §7.2 faithfully: the kernel
// queues small messages upward into a bounded buffer that the signaling
// entity drains through select(), and writes downward invoke the socket
// layer's soisdisconnected. The bounded buffer (8 buffers originally,
// 80 after the fix) and the finite fd table (20, raised to 100) are the
// two scaling limits §10 reports; both are configurable here so
// experiment E5 can sweep them.
package kern

import (
	"errors"
	"fmt"
	"time"

	"xunet/internal/atm"
	"xunet/internal/cost"
	"xunet/internal/hobbit"
	"xunet/internal/memnet"
	"xunet/internal/obs"
	"xunet/internal/sim"
	"xunet/internal/trace"
)

// Default table sizes from §10.
const (
	DefaultFDTableSize   = 20
	DefaultDeviceBuffers = 8
	FixedFDTableSize     = 100
	FixedDeviceBuffers   = 80
)

// Errors from the kernel layer.
var (
	ErrEMFILE     = errors.New("kern: per-process file descriptor table full (EMFILE)")
	ErrEBADF      = errors.New("kern: bad file descriptor")
	ErrProcExited = errors.New("kern: process has exited")
)

// ProtoFamily is a protocol family registered with a machine (the
// PF_XUNET stack). The kernel calls Soisdisconnected when the signaling
// entity writes a disconnect command down the pseudo-device.
type ProtoFamily interface {
	// Soisdisconnected marks the socket bound to vci unusable and wakes
	// any blocked readers. Unknown VCIs are ignored.
	Soisdisconnected(vci atm.VCI)
}

// FDObject is anything held in a file descriptor slot.
type FDObject interface {
	// KClose releases the object; called on explicit close and on
	// process exit. Must be idempotent.
	KClose()
}

// timeWaiter marks fd objects whose closed descriptor slot lingers for
// 2·MSL, per §10 ("TCP keeps the descriptor in the table for two
// Maximum Segment Lifetimes").
type timeWaiter interface {
	holdsTimeWait() bool
}

// Machine is one simulated computer: engine, cost model, IP interface,
// optional ATM interface, pseudo-device, and processes.
type Machine struct {
	Name  string
	E     *sim.Engine
	CM    sim.CostModel
	Meter *cost.Meter

	// IP is the machine's internet interface; Orc its ATM device driver
	// (with a Hobbit board on routers, an encapsulation backend on
	// hosts).
	IP  *memnet.Node
	Orc *hobbit.Driver

	// Dev is the /dev/anand pseudo-device, nil until installed.
	Dev *PseudoDev

	// Obs is the machine's telemetry registry: every component on the
	// machine (pseudo-device, shaper, ATM layer, sighost) registers its
	// metrics here, so one snapshot covers the whole stack.
	Obs *obs.Registry

	// TraceC is the causal-trace collector shared by every machine in a
	// testbed (nil or disabled means no tracing). Components reach it
	// through their machine so a call's spans land in one tree.
	TraceC *trace.Collector

	// FDTableSize applies to processes spawned after it is set.
	FDTableSize int

	families []ProtoFamily
	procs    map[uint32]*Proc
	nextPID  uint32

	ctSpawned *obs.Counter // kern.procs.spawned
	gLive     *obs.Gauge   // kern.procs.live (with high-water mark)
}

// NewMachine assembles a machine. The IP node's meter is pointed at the
// machine's meter.
func NewMachine(name string, e *sim.Engine, cm sim.CostModel, ip *memnet.Node) *Machine {
	m := &Machine{
		Name:        name,
		E:           e,
		CM:          cm,
		Meter:       cost.NewMeter(),
		IP:          ip,
		Obs:         obs.NewRegistry(),
		FDTableSize: DefaultFDTableSize,
		procs:       make(map[uint32]*Proc),
	}
	if ip != nil {
		ip.Meter = m.Meter
	}
	m.Orc = hobbit.NewDriver(m.Meter)
	m.ctSpawned = m.Obs.Counter("kern.procs.spawned")
	m.gLive = m.Obs.Gauge("kern.procs.live")
	// Engine internals, surfaced per machine as read-through metrics:
	// executed events, event-pool hit/miss, and the heap high-water
	// mark. They read plain engine fields, so sampling must happen in
	// engine context (mgmt queries, tseries ticks, post-run snapshots
	// all do) — at a fixed point of the virtual history the values are
	// deterministic, so they are safe for the byte-diffed exports.
	m.Obs.Func("sim.events.executed", e.EventsExecuted)
	m.Obs.Func("sim.pool.hits", e.TimerPoolHits)
	m.Obs.Func("sim.pool.misses", e.TimerPoolMisses)
	m.Obs.Func("sim.heap.hiwat", e.HeapHighWater)
	return m
}

// InstallPseudoDev creates /dev/anand with the given buffer count and
// wires its downward path to the machine's protocol families.
func (m *Machine) InstallPseudoDev(buffers int) *PseudoDev {
	m.Dev = NewPseudoDev(m.E, buffers)
	m.Dev.Instrument(m.Obs)
	m.Dev.onDown = func(cmd DownCmd) {
		switch cmd.Kind {
		case DownDisconnect:
			for _, f := range m.families {
				f.Soisdisconnected(cmd.VCI)
			}
		}
	}
	return m.Dev
}

// RegisterFamily adds a protocol family to the machine.
func (m *Machine) RegisterFamily(f ProtoFamily) { m.families = append(m.families, f) }

// Proc looks up a live process by pid.
func (m *Machine) Proc(pid uint32) *Proc { return m.procs[pid] }

// LiveProcs reports the number of processes that have not exited.
func (m *Machine) LiveProcs() int { return len(m.procs) }

// Proc is a simulated Unix process.
type Proc struct {
	M    *Machine
	PID  uint32
	Name string
	// SP is the underlying simulation process; kernel code blocks it
	// for syscalls, context switches and I/O waits.
	SP *sim.Proc

	fds    []fdEntry
	exited bool
	onExit []func()
}

type fdEntry struct {
	obj      FDObject
	timeWait bool
}

// Spawn starts a process running body. When body returns — or the
// process is killed — exit processing closes every open descriptor and
// posts a termination indication to the pseudo-device, which is how the
// signaling entity learns about dead applications (§5.3).
func (m *Machine) Spawn(name string, body func(p *Proc)) *Proc {
	m.nextPID++
	p := &Proc{
		M:    m,
		PID:  m.nextPID,
		Name: name,
		fds:  make([]fdEntry, m.FDTableSize),
	}
	m.procs[p.PID] = p
	m.ctSpawned.Inc()
	m.gLive.Set(int64(len(m.procs)))
	p.SP = m.E.Go(fmt.Sprintf("%s/%s#%d", m.Name, name, p.PID), func(sp *sim.Proc) {
		defer p.exit()
		body(p)
	})
	return p
}

// Kill terminates the process abruptly; exit processing still runs,
// exactly as the kernel reclaims a crashed program's resources.
func (p *Proc) Kill() { p.SP.Kill() }

// Exited reports whether exit processing has completed.
func (p *Proc) Exited() bool { return p.exited }

// OnExit registers a hook run during exit processing, after descriptors
// are closed.
func (p *Proc) OnExit(fn func()) { p.onExit = append(p.onExit, fn) }

func (p *Proc) exit() {
	if p.exited {
		return
	}
	p.exited = true
	delete(p.M.procs, p.PID)
	p.M.gLive.Set(int64(len(p.M.procs)))
	for i := range p.fds {
		if o := p.fds[i].obj; o != nil {
			p.fds[i].obj = nil
			p.fds[i].timeWait = false
			o.KClose()
		}
	}
	for _, fn := range p.onExit {
		fn()
	}
	// The kernel hands the termination message to the signaling entity
	// through the pseudo-device.
	if p.M.Dev != nil {
		p.M.Dev.PostUp(KMsg{Kind: MsgExit, PID: p.PID})
	}
}

// AllocFD installs obj in the lowest free descriptor slot. Slots parked
// in TIME_WAIT are not free — this is the §10 scaling limit.
func (p *Proc) AllocFD(obj FDObject) (int, error) {
	if p.exited {
		return -1, ErrProcExited
	}
	for i := range p.fds {
		if p.fds[i].obj == nil && !p.fds[i].timeWait {
			p.fds[i].obj = obj
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %d slots on %s/%s", ErrEMFILE, len(p.fds), p.M.Name, p.Name)
}

// CloseFD closes a descriptor. Objects with TIME_WAIT semantics keep
// the slot busy for 2·MSL after the close.
func (p *Proc) CloseFD(fd int) error {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd].obj == nil {
		return ErrEBADF
	}
	obj := p.fds[fd].obj
	p.fds[fd].obj = nil
	if tw, ok := obj.(timeWaiter); ok && tw.holdsTimeWait() {
		p.fds[fd].timeWait = true
		slot := fd
		p.M.E.Schedule(2*p.M.CM.MSL, func() { p.fds[slot].timeWait = false })
	}
	obj.KClose()
	return nil
}

// FD returns the object at a descriptor.
func (p *Proc) FD(fd int) (FDObject, error) {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd].obj == nil {
		return nil, ErrEBADF
	}
	return p.fds[fd].obj, nil
}

// OpenFDs counts descriptors holding live objects.
func (p *Proc) OpenFDs() int {
	n := 0
	for i := range p.fds {
		if p.fds[i].obj != nil {
			n++
		}
	}
	return n
}

// TimeWaitFDs counts descriptor slots parked in TIME_WAIT.
func (p *Proc) TimeWaitFDs() int {
	n := 0
	for i := range p.fds {
		if p.fds[i].timeWait {
			n++
		}
	}
	return n
}

// FreeFDs counts allocatable descriptor slots.
func (p *Proc) FreeFDs() int {
	n := 0
	for i := range p.fds {
		if p.fds[i].obj == nil && !p.fds[i].timeWait {
			n++
		}
	}
	return n
}

// Syscall charges the trap cost of one non-switching system call.
func (p *Proc) Syscall() { p.SP.Sleep(p.M.CM.SyscallEntry) }

// ContextSwitches charges n process switches to this process's virtual
// time. The signaling RPC of §9 costs four of these.
func (p *Proc) ContextSwitches(n int) {
	if n > 0 {
		p.SP.Sleep(time.Duration(n) * p.M.CM.ContextSwitch)
	}
}
