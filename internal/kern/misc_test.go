package kern

import (
	"errors"
	"strings"
	"testing"
	"time"

	"xunet/internal/memnet"
)

// Coverage for the smaller kernel entry points.

func TestSyscallCharge(t *testing.T) {
	e, h, _ := rig(t)
	var took time.Duration
	h.Spawn("app", func(p *Proc) {
		start := p.SP.Now()
		p.Syscall()
		took = p.SP.Now() - start
	})
	e.Run()
	if took != h.CM.SyscallEntry {
		t.Fatalf("syscall took %v, want %v", took, h.CM.SyscallEntry)
	}
}

func TestContextSwitchesZeroIsFree(t *testing.T) {
	e, h, _ := rig(t)
	var took time.Duration
	h.Spawn("app", func(p *Proc) {
		start := p.SP.Now()
		p.ContextSwitches(0)
		p.ContextSwitches(-3)
		took = p.SP.Now() - start
	})
	e.Run()
	if took != 0 {
		t.Fatalf("non-positive switches took %v", took)
	}
}

func TestFDAccessor(t *testing.T) {
	e, h, _ := rig(t)
	h.Spawn("app", func(p *Proc) {
		obj := &fakeFD{}
		fd, _ := p.AllocFD(obj)
		got, err := p.FD(fd)
		if err != nil || got != FDObject(obj) {
			t.Errorf("FD() = %v, %v", got, err)
		}
		if _, err := p.FD(-1); !errors.Is(err, ErrEBADF) {
			t.Errorf("negative fd err = %v", err)
		}
	})
	e.Run()
}

func TestMsgKindStrings(t *testing.T) {
	cases := map[MsgKind]string{
		MsgExit:    "EXIT_IND",
		MsgBind:    "BIND_IND",
		MsgConnect: "CONNECT_IND",
		MsgClose:   "CLOSE_IND",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(MsgKind(99).String(), "99") {
		t.Error("unknown kind string")
	}
	m := KMsg{Kind: MsgBind, VCI: 7, Cookie: 9, PID: 3}
	s := m.String()
	for _, want := range []string{"BIND_IND", "vci=7", "cookie=9", "pid=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("KMsg.String() = %q missing %q", s, want)
		}
	}
}

func TestPseudoDevDefaults(t *testing.T) {
	e, h, _ := rig(t)
	_ = h
	d := NewPseudoDev(e, 0)
	if d.Capacity() != DefaultDeviceBuffers {
		t.Fatalf("default capacity = %d", d.Capacity())
	}
	d2 := NewPseudoDev(e, -5)
	if d2.Capacity() != DefaultDeviceBuffers {
		t.Fatalf("negative capacity = %d", d2.Capacity())
	}
}

func TestListenerPortAndAcceptTimeout(t *testing.T) {
	e, h, r := rig(t)
	var port uint16
	var timedOut bool
	r.Spawn("server", func(p *Proc) {
		l, err := p.Listen(5123)
		if err != nil {
			t.Error(err)
			return
		}
		port = l.Port()
		_, err = l.AcceptTimeout(50 * time.Millisecond)
		timedOut = errors.Is(err, memnet.ErrDialTimeout)
		// Then a real connection arrives inside the next timeout.
		ks, err := l.AcceptTimeout(5 * time.Second)
		if err != nil {
			t.Errorf("second accept: %v", err)
			return
		}
		if ks.RemoteAddr() != h.IP.Addr {
			t.Errorf("remote = %v", ks.RemoteAddr())
		}
		if ks.Stream() == nil {
			t.Error("no underlying stream")
		}
		ks.Close()
		l.Close()
	})
	h.Spawn("client", func(p *Proc) {
		p.SP.Sleep(200 * time.Millisecond)
		ks, err := p.Dial(r.IP.Addr, 5123)
		if err != nil {
			t.Error(err)
			return
		}
		p.SP.Sleep(100 * time.Millisecond)
		ks.Close()
	})
	e.Run()
	if port != 5123 {
		t.Fatalf("Port() = %d", port)
	}
	if !timedOut {
		t.Fatal("AcceptTimeout did not time out")
	}
}

func TestDownCmdDispatchWithoutHandler(t *testing.T) {
	e, _, _ := rig(t)
	d := NewPseudoDev(e, 8)
	d.WriteDown(DownCmd{Kind: DownDisconnect, VCI: 1}) // no handler: no panic
}
