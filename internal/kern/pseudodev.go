package kern

import (
	"fmt"
	"time"

	"xunet/internal/atm"
	"xunet/internal/faults"
	"xunet/internal/obs"
	"xunet/internal/sim"
)

// MsgKind tags an upward pseudo-device message (kernel → signaling).
type MsgKind uint8

// Upward message kinds, matching §7.2: the kernel passes messages up
// "when a process terminates, or when it binds or connects to a
// PF_XUNET socket".
const (
	// MsgExit reports process termination; PID is set.
	MsgExit MsgKind = iota + 1
	// MsgBind reports a bind on a PF_XUNET socket; VCI, Cookie and PID
	// are set.
	MsgBind
	// MsgConnect reports a connect on a PF_XUNET socket; VCI, Cookie
	// and PID are set.
	MsgConnect
	// MsgClose reports an application closing a PF_XUNET socket, so the
	// signaling entity can tear the call down; VCI is set.
	MsgClose
)

func (k MsgKind) String() string {
	switch k {
	case MsgExit:
		return "EXIT_IND"
	case MsgBind:
		return "BIND_IND"
	case MsgConnect:
		return "CONNECT_IND"
	case MsgClose:
		return "CLOSE_IND"
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// KMsg is one upward pseudo-device message. The original wire format is
// four bytes; the struct carries the same information decoded. At is
// the sim time the kernel posted the indication, stamped by PostUp, so
// the tracing layer can attribute the queueing delay between the
// kernel event and the sighost consuming it.
type KMsg struct {
	Kind   MsgKind
	VCI    atm.VCI
	Cookie uint16
	PID    uint32
	At     time.Duration
}

// String renders the message for traces.
func (m KMsg) String() string {
	return fmt.Sprintf("%v{vci=%d cookie=%d pid=%d}", m.Kind, m.VCI, m.Cookie, m.PID)
}

// DownKind tags a downward command (signaling → kernel).
type DownKind uint8

// Downward command kinds.
const (
	// DownDisconnect marks the socket bound to VCI unusable
	// (soisdisconnected), used when the peer terminated or cookie
	// authentication failed.
	DownDisconnect DownKind = iota + 1
)

// DownCmd is one downward pseudo-device command.
type DownCmd struct {
	Kind DownKind
	VCI  atm.VCI
}

// PseudoDev is the /dev/anand character pseudo-device. Upward messages
// are queued in a bounded buffer; when the buffer is full the message
// is lost and counted — the failure mode §10 hit with eight buffers
// under a hundred-call burst. The device supports select()-style
// blocking reads.
type PseudoDev struct {
	e        *sim.Engine
	capacity int
	q        *sim.Queue[KMsg]
	onDown   func(DownCmd)

	// Posted counts successful upward messages; Lost counts messages
	// dropped because the buffer was full.
	Posted uint64
	Lost   uint64

	// Registry instrumentation (nil until Instrument): dropped upward
	// indications used to vanish with only the Lost field to show for
	// it; now every overflow increments kern.dev.overflows and the depth
	// gauge's high-water mark records how close to capacity the buffer ran.
	overflows *obs.Counter
	depth     *obs.Gauge

	// faults, when non-nil, drops upward indications as if the buffer
	// were under pressure — the §10 failure mode on demand.
	faults *faults.Plane
}

// SetFaults attaches a fault plane; injected drops count as Lost and
// overflow exactly like real buffer exhaustion.
func (d *PseudoDev) SetFaults(p *faults.Plane) { d.faults = p }

// NewPseudoDev creates a device with the given number of message
// buffers (§10: 8 originally, 80 after the fix).
func NewPseudoDev(e *sim.Engine, buffers int) *PseudoDev {
	if buffers <= 0 {
		buffers = DefaultDeviceBuffers
	}
	return &PseudoDev{e: e, capacity: buffers, q: sim.NewQueue[KMsg](e)}
}

// Capacity reports the buffer count.
func (d *PseudoDev) Capacity() int { return d.capacity }

// Instrument registers the device's metrics in reg: kern.dev.posted and
// kern.dev.lost (read-through), kern.dev.overflows (counted at the drop
// site) and the kern.dev.depth gauge whose high-water mark records peak
// buffer occupancy.
func (d *PseudoDev) Instrument(reg *obs.Registry) {
	d.overflows = reg.Counter("kern.dev.overflows")
	d.depth = reg.Gauge("kern.dev.depth")
	reg.Func("kern.dev.posted", func() uint64 { return d.Posted })
	reg.Func("kern.dev.lost", func() uint64 { return d.Lost })
}

// PostUp enqueues an upward message from the kernel. It reports false —
// and counts the loss — when every buffer is occupied. A message handed
// directly to a blocked reader occupies no buffer.
func (d *PseudoDev) PostUp(m KMsg) bool {
	if d.faults != nil && d.faults.DevDrop() {
		d.Lost++
		if d.overflows != nil {
			d.overflows.Inc()
		}
		return false
	}
	if d.q.Len() >= d.capacity {
		d.Lost++
		if d.overflows != nil {
			d.overflows.Inc()
			d.depth.Set(int64(d.capacity))
		}
		return false
	}
	d.Posted++
	m.At = d.e.Now()
	d.q.Put(m)
	if d.depth != nil {
		d.depth.Set(int64(d.q.Len()))
	}
	return true
}

// ReadUp blocks the calling process until a message arrives, exactly as
// anand server "simply blocks on select()".
func (d *PseudoDev) ReadUp(p *sim.Proc) (KMsg, bool) {
	return d.q.Get(p)
}

// TryReadUp drains one buffered message without blocking.
func (d *PseudoDev) TryReadUp() (KMsg, bool) { return d.q.TryGet() }

// Buffered reports the messages currently occupying buffers.
func (d *PseudoDev) Buffered() int { return d.q.Len() }

// WriteDown delivers a command from the signaling entity to the kernel;
// the device's write routine runs it immediately (it calls the socket
// layer's soisdisconnected).
func (d *PseudoDev) WriteDown(cmd DownCmd) {
	if d.onDown != nil {
		d.onDown(cmd)
	}
}

// Close shuts the upward queue, unblocking readers.
func (d *PseudoDev) Close() { d.q.Close() }
