package kern

import (
	"time"

	"xunet/internal/memnet"
)

// KListener and KStream wrap the internetwork's stream service with
// file-descriptor accounting, so the per-process table limits of §10
// bite exactly where they did in the original: one descriptor per
// listening socket, one per accepted or dialed connection, and closed
// connection descriptors parked in TIME_WAIT for 2·MSL.

// KListener is a listening stream socket owned by a process.
type KListener struct {
	p  *Proc
	fd int
	l  *memnet.StreamListener
}

// Listen binds a listening stream socket on port, consuming a
// descriptor.
func (p *Proc) Listen(port uint16) (*KListener, error) {
	kl := &KListener{p: p}
	fd, err := p.AllocFD(kl)
	if err != nil {
		return nil, err
	}
	l, err := p.M.IP.ListenStream(port)
	if err != nil {
		_ = p.CloseFD(fd)
		return nil, err
	}
	kl.fd, kl.l = fd, l
	return kl, nil
}

// Accept blocks for an inbound connection and allocates a descriptor
// for it. With no free descriptor it fails with EMFILE before
// accepting, leaving the connection queued — the §10 stall.
func (kl *KListener) Accept() (*KStream, error) {
	ks := &KStream{p: kl.p}
	fd, err := kl.p.AllocFD(ks)
	if err != nil {
		return nil, err
	}
	s, ok := kl.l.Accept(kl.p.SP)
	if !ok {
		_ = kl.p.CloseFD(fd)
		return nil, memnet.ErrStreamClosed
	}
	ks.fd, ks.s = fd, s
	return ks, nil
}

// AcceptTimeout is Accept bounded by d.
func (kl *KListener) AcceptTimeout(d time.Duration) (*KStream, error) {
	ks := &KStream{p: kl.p}
	fd, err := kl.p.AllocFD(ks)
	if err != nil {
		return nil, err
	}
	s, ok, timedOut := kl.l.AcceptTimeout(kl.p.SP, d)
	if !ok {
		_ = kl.p.CloseFD(fd)
		if timedOut {
			return nil, memnet.ErrDialTimeout
		}
		return nil, memnet.ErrStreamClosed
	}
	ks.fd, ks.s = fd, s
	return ks, nil
}

// Port reports the listening port.
func (kl *KListener) Port() uint16 { return kl.l.Port() }

// Close releases the listener and its descriptor (no TIME_WAIT for
// listening sockets).
func (kl *KListener) Close() { _ = kl.p.CloseFD(kl.fd) }

// KClose implements FDObject.
func (kl *KListener) KClose() {
	if kl.l != nil {
		kl.l.Close()
	}
}

// KStream is a connected stream socket owned by a process.
type KStream struct {
	p  *Proc
	fd int
	s  *memnet.Stream
}

// Dial opens a stream connection, consuming a descriptor.
func (p *Proc) Dial(raddr memnet.IPAddr, port uint16) (*KStream, error) {
	ks := &KStream{p: p}
	fd, err := p.AllocFD(ks)
	if err != nil {
		return nil, err
	}
	s, err := p.M.IP.DialStream(p.SP, raddr, port)
	if err != nil {
		_ = p.CloseFD(fd)
		return nil, err
	}
	ks.fd, ks.s = fd, s
	return ks, nil
}

// Send queues one framed message.
func (ks *KStream) Send(msg []byte) error { return ks.s.Send(msg) }

// Recv blocks for the next message; ok is false at EOF or reset.
func (ks *KStream) Recv() ([]byte, bool) { return ks.s.Recv(ks.p.SP) }

// RecvTimeout is Recv bounded by d (d < 0 means no bound).
func (ks *KStream) RecvTimeout(d time.Duration) (msg []byte, ok, timedOut bool) {
	return ks.s.RecvTimeout(ks.p.SP, d)
}

// Stream exposes the underlying transport connection.
func (ks *KStream) Stream() *memnet.Stream { return ks.s }

// RemoteAddr reports the peer address.
func (ks *KStream) RemoteAddr() memnet.IPAddr { return ks.s.RemoteAddr() }

// Close closes the connection; the descriptor slot parks in TIME_WAIT.
func (ks *KStream) Close() { _ = ks.p.CloseFD(ks.fd) }

// KClose implements FDObject.
func (ks *KStream) KClose() {
	if ks.s != nil {
		ks.s.Close()
	}
}

// holdsTimeWait marks connected stream descriptors for TIME_WAIT
// retention. Descriptors of failed dials and reset connections release
// immediately, as TCP only enters TIME_WAIT from an orderly close.
func (ks *KStream) holdsTimeWait() bool { return ks.s != nil && !ks.s.Reset() }
