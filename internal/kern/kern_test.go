package kern

import (
	"errors"
	"testing"
	"time"

	"xunet/internal/atm"
	"xunet/internal/memnet"
	"xunet/internal/sim"
)

// rig builds two machines (host, router) on a shared FDDI segment.
func rig(t *testing.T) (*sim.Engine, *Machine, *Machine) {
	t.Helper()
	e := sim.New(1)
	n := memnet.New(e)
	hn := n.MustAddNode("host", memnet.IP4(10, 0, 0, 1))
	rn := n.MustAddNode("router", memnet.IP4(10, 0, 0, 2))
	n.Connect(hn, rn, memnet.FDDI())
	hn.SetDefaultRoute(rn)
	rn.SetDefaultRoute(hn)
	cm := sim.DefaultCostModel()
	return e, NewMachine("host", e, cm, hn), NewMachine("router", e, cm, rn)
}

func TestSpawnAndExit(t *testing.T) {
	e, h, _ := rig(t)
	ran := false
	p := h.Spawn("app", func(p *Proc) { ran = true })
	e.Run()
	if !ran || !p.Exited() {
		t.Fatalf("ran=%v exited=%v", ran, p.Exited())
	}
	if h.LiveProcs() != 0 {
		t.Fatalf("live procs = %d", h.LiveProcs())
	}
}

func TestPIDsDistinct(t *testing.T) {
	e, h, _ := rig(t)
	p1 := h.Spawn("a", func(p *Proc) { p.SP.Sleep(time.Second) })
	p2 := h.Spawn("b", func(p *Proc) { p.SP.Sleep(time.Second) })
	if p1.PID == p2.PID {
		t.Fatal("duplicate pids")
	}
	if h.Proc(p1.PID) != p1 || h.Proc(p2.PID) != p2 {
		t.Fatal("lookup broken")
	}
	e.Run()
}

type fakeFD struct{ closed int }

func (f *fakeFD) KClose() { f.closed++ }

type fakeTWFD struct{ fakeFD }

func (f *fakeTWFD) holdsTimeWait() bool { return true }

func TestFDAllocationLimits(t *testing.T) {
	e, h, _ := rig(t)
	h.FDTableSize = 3
	var allocErr error
	h.Spawn("app", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if _, err := p.AllocFD(&fakeFD{}); err != nil {
				t.Errorf("alloc %d: %v", i, err)
			}
		}
		_, allocErr = p.AllocFD(&fakeFD{})
	})
	e.Run()
	if !errors.Is(allocErr, ErrEMFILE) {
		t.Fatalf("err = %v", allocErr)
	}
}

func TestCloseFreesSlotImmediatelyWithoutTimeWait(t *testing.T) {
	e, h, _ := rig(t)
	h.FDTableSize = 1
	ok := true
	h.Spawn("app", func(p *Proc) {
		f := &fakeFD{}
		fd, _ := p.AllocFD(f)
		_ = p.CloseFD(fd)
		if f.closed != 1 {
			ok = false
		}
		if _, err := p.AllocFD(&fakeFD{}); err != nil {
			ok = false
		}
	})
	e.Run()
	if !ok {
		t.Fatal("slot not reusable after close")
	}
}

func TestTimeWaitHoldsSlot(t *testing.T) {
	e, h, _ := rig(t)
	h.FDTableSize = 1
	var midErr, lateErr error
	h.Spawn("app", func(p *Proc) {
		fd, _ := p.AllocFD(&fakeTWFD{})
		_ = p.CloseFD(fd)
		if p.TimeWaitFDs() != 1 {
			t.Error("no TIME_WAIT slot")
		}
		_, midErr = p.AllocFD(&fakeFD{})
		p.SP.Sleep(2*h.CM.MSL + time.Millisecond)
		_, lateErr = p.AllocFD(&fakeFD{})
	})
	e.Run()
	if !errors.Is(midErr, ErrEMFILE) {
		t.Fatalf("mid err = %v", midErr)
	}
	if lateErr != nil {
		t.Fatalf("late err = %v", lateErr)
	}
}

func TestExitClosesFDs(t *testing.T) {
	e, h, _ := rig(t)
	f1, f2 := &fakeFD{}, &fakeTWFD{}
	h.Spawn("app", func(p *Proc) {
		p.AllocFD(f1)
		p.AllocFD(f2)
	})
	e.Run()
	if f1.closed != 1 || f2.closed != 1 {
		t.Fatalf("closed %d/%d", f1.closed, f2.closed)
	}
}

func TestKillRunsExitProcessing(t *testing.T) {
	e, h, _ := rig(t)
	f := &fakeFD{}
	hookRan := false
	p := h.Spawn("app", func(p *Proc) {
		p.AllocFD(f)
		p.OnExit(func() { hookRan = true })
		p.SP.Park() // hang forever
	})
	e.Go("killer", func(sp *sim.Proc) {
		sp.Sleep(time.Second)
		p.Kill()
	})
	e.Run()
	if f.closed != 1 || !hookRan || !p.Exited() {
		t.Fatalf("closed=%d hook=%v exited=%v", f.closed, hookRan, p.Exited())
	}
}

func TestExitPostsTerminationIndication(t *testing.T) {
	e, h, _ := rig(t)
	dev := h.InstallPseudoDev(8)
	h.Spawn("app", func(p *Proc) {})
	e.Run()
	msg, ok := dev.TryReadUp()
	if !ok || msg.Kind != MsgExit {
		t.Fatalf("msg=%v ok=%v", msg, ok)
	}
	if msg.PID == 0 {
		t.Fatal("no pid in exit indication")
	}
}

func TestPseudoDevBoundedBuffer(t *testing.T) {
	e, h, _ := rig(t)
	dev := h.InstallPseudoDev(8)
	// No reader: the ninth message must be lost.
	for i := 0; i < 12; i++ {
		dev.PostUp(KMsg{Kind: MsgBind, VCI: atm.VCI(i)})
	}
	if dev.Lost != 4 || dev.Posted != 8 {
		t.Fatalf("lost=%d posted=%d", dev.Lost, dev.Posted)
	}
	if dev.Buffered() != 8 {
		t.Fatalf("buffered = %d", dev.Buffered())
	}
	e.Run()
}

func TestPseudoDevOverflowTelemetry(t *testing.T) {
	e, h, _ := rig(t)
	dev := h.InstallPseudoDev(8) // InstallPseudoDev instruments against h.Obs
	for i := 0; i < 12; i++ {
		dev.PostUp(KMsg{Kind: MsgBind, VCI: atm.VCI(i)})
	}
	snap := h.Obs.Snapshot()
	if got := snap.Count("kern.dev.overflows"); got != 4 {
		t.Fatalf("overflows = %d", got)
	}
	if got := snap.Count("kern.dev.posted"); got != 8 {
		t.Fatalf("posted = %d", got)
	}
	if got := snap.Count("kern.dev.lost"); got != 4 {
		t.Fatalf("lost = %d", got)
	}
	// The depth gauge's high-water mark pins at capacity once a drop has
	// occurred, then the current value falls as a reader drains.
	g := snap.Gauge("kern.dev.depth")
	if g == nil || g.Max != 8 || g.Value != 8 {
		t.Fatalf("depth gauge = %+v", g)
	}
	for dev.Buffered() > 0 {
		dev.TryReadUp()
	}
	dev.PostUp(KMsg{Kind: MsgBind, VCI: 99})
	g = h.Obs.Snapshot().Gauge("kern.dev.depth")
	if g == nil || g.Value != 1 || g.Max != 8 {
		t.Fatalf("after drain: depth gauge = %+v", g)
	}
	e.Run()
}

func TestPseudoDevReaderKeepsBufferEmpty(t *testing.T) {
	e, h, _ := rig(t)
	dev := h.InstallPseudoDev(2)
	var got []KMsg
	e.Go("anand-server", func(sp *sim.Proc) {
		for {
			m, ok := dev.ReadUp(sp)
			if !ok {
				return
			}
			got = append(got, m)
		}
	})
	e.Go("kernel", func(sp *sim.Proc) {
		for i := 0; i < 20; i++ {
			dev.PostUp(KMsg{Kind: MsgBind, VCI: atm.VCI(i)})
			sp.Sleep(time.Millisecond)
		}
		dev.Close()
	})
	e.Run()
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20", len(got))
	}
	if dev.Lost != 0 {
		t.Fatalf("lost = %d with an active reader", dev.Lost)
	}
}

func TestPseudoDevWriteDownDisconnects(t *testing.T) {
	_, h, _ := rig(t)
	dev := h.InstallPseudoDev(8)
	var got []atm.VCI
	h.RegisterFamily(disconnectRecorder{&got})
	dev.WriteDown(DownCmd{Kind: DownDisconnect, VCI: 42})
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}

type disconnectRecorder struct{ vcis *[]atm.VCI }

func (d disconnectRecorder) Soisdisconnected(v atm.VCI) { *d.vcis = append(*d.vcis, v) }

func TestKStreamEndToEnd(t *testing.T) {
	e, h, r := rig(t)
	var got string
	r.Spawn("server", func(p *Proc) {
		l, err := p.Listen(5000)
		if err != nil {
			t.Error(err)
			return
		}
		ks, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		msg, ok := ks.Recv()
		if ok {
			got = string(msg)
		}
		ks.Close()
		l.Close()
	})
	h.Spawn("client", func(p *Proc) {
		p.SP.Sleep(time.Millisecond)
		ks, err := p.Dial(r.IP.Addr, 5000)
		if err != nil {
			t.Error(err)
			return
		}
		_ = ks.Send([]byte("hello kernel"))
		ks.Close()
	})
	e.Run()
	if got != "hello kernel" {
		t.Fatalf("got %q", got)
	}
}

func TestKStreamFDsEnterTimeWait(t *testing.T) {
	e, h, r := rig(t)
	r.Spawn("server", func(p *Proc) {
		l, _ := p.Listen(5000)
		for {
			ks, err := l.Accept()
			if err != nil {
				return
			}
			ks.Close() // active close -> TIME_WAIT at server
		}
	})
	var twSeen int
	h.Spawn("client", func(p *Proc) {
		for i := 0; i < 3; i++ {
			ks, err := p.Dial(r.IP.Addr, 5000)
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			// Wait for server close, then close our end.
			ks.RecvTimeout(time.Second)
			ks.Close()
		}
		p.SP.Sleep(100 * time.Millisecond)
		twSeen = p.TimeWaitFDs()
	})
	e.RunUntil(10 * time.Second) // less than 2*MSL: TIME_WAIT still held
	if twSeen != 3 {
		t.Fatalf("client TIME_WAIT fds = %d, want 3", twSeen)
	}
	e.Run()
}

func TestAcceptEMFILEWhenTableFull(t *testing.T) {
	e, h, r := rig(t)
	r.FDTableSize = 2 // listener + one connection
	var acceptErr error
	r.Spawn("server", func(p *Proc) {
		l, _ := p.Listen(5000)
		// Let both clients connect first (the backlog holds them).
		p.SP.Sleep(10 * time.Millisecond)
		if _, err := l.Accept(); err != nil {
			t.Error(err)
			return
		}
		_, acceptErr = l.Accept()
	})
	h.Spawn("clients", func(p *Proc) {
		p.SP.Sleep(time.Millisecond)
		for i := 0; i < 2; i++ {
			if _, err := p.Dial(r.IP.Addr, 5000); err != nil {
				t.Errorf("dial %d: %v", i, err)
			}
		}
	})
	e.Run()
	if !errors.Is(acceptErr, ErrEMFILE) {
		t.Fatalf("accept err = %v", acceptErr)
	}
}

func TestDialFailureReleasesFD(t *testing.T) {
	e, h, r := rig(t)
	var free0, free1 int
	h.Spawn("client", func(p *Proc) {
		free0 = p.FreeFDs()
		if _, err := p.Dial(r.IP.Addr, 404); err == nil {
			t.Error("dial to closed port succeeded")
		}
		free1 = p.FreeFDs()
	})
	e.Run()
	if free0 != free1 {
		t.Fatalf("fd leaked on failed dial: %d -> %d", free0, free1)
	}
}

func TestSyscallAndSwitchCosts(t *testing.T) {
	e, h, _ := rig(t)
	var took time.Duration
	h.Spawn("app", func(p *Proc) {
		start := p.SP.Now()
		p.ContextSwitches(4)
		took = p.SP.Now() - start
	})
	e.Run()
	if took != 4*h.CM.ContextSwitch {
		t.Fatalf("4 switches took %v", took)
	}
	if took < 17*time.Millisecond || took > 20*time.Millisecond {
		t.Fatalf("4 switches = %v, outside the paper's 17-20ms RPC band", took)
	}
}

func TestOpenFDCounters(t *testing.T) {
	e, h, _ := rig(t)
	h.Spawn("app", func(p *Proc) {
		if p.OpenFDs() != 0 || p.FreeFDs() != h.FDTableSize {
			t.Error("initial counters wrong")
		}
		fd, _ := p.AllocFD(&fakeFD{})
		if p.OpenFDs() != 1 {
			t.Error("open count wrong")
		}
		_ = p.CloseFD(fd)
		if p.OpenFDs() != 0 {
			t.Error("close not counted")
		}
		if err := p.CloseFD(fd); !errors.Is(err, ErrEBADF) {
			t.Errorf("double close err = %v", err)
		}
		if _, err := p.FD(99); !errors.Is(err, ErrEBADF) {
			t.Errorf("bad fd err = %v", err)
		}
	})
	e.Run()
}
