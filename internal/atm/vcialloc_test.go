package atm

import "testing"

func TestVCIAllocBasics(t *testing.T) {
	a := NewVCIAlloc(0) // clamps to 32
	if v := a.Alloc(); v != 32 {
		t.Fatalf("first Alloc = %d, want 32", v)
	}
	if v := a.Alloc(); v != 33 {
		t.Fatalf("second Alloc = %d, want 33", v)
	}
	if !a.InUse(32) || a.InUse(34) {
		t.Fatal("InUse bookkeeping wrong")
	}
	a.Free(32)
	a.Free(32) // double free ignored
	if v := a.Alloc(); v != 32 {
		t.Fatalf("Alloc after Free = %d, want LIFO reuse of 32", v)
	}
	if a.Live() != 2 {
		t.Fatalf("Live = %d, want 2", a.Live())
	}
}

func TestVCIAllocLIFOOrder(t *testing.T) {
	a := NewVCIAlloc(32)
	var got [4]VCI
	for i := range got {
		got[i] = a.Alloc()
	}
	a.Free(got[1])
	a.Free(got[3])
	if v := a.Alloc(); v != got[3] {
		t.Fatalf("Alloc = %d, want most recently freed %d", v, got[3])
	}
	if v := a.Alloc(); v != got[1] {
		t.Fatalf("Alloc = %d, want %d", v, got[1])
	}
}

func TestVCIAllocReserveAndExhaustion(t *testing.T) {
	a := NewVCIAlloc(MaxVCI - 2)
	if !a.Reserve(MaxVCI - 1) {
		t.Fatal("Reserve failed on free VCI")
	}
	if a.Reserve(MaxVCI - 1) {
		t.Fatal("Reserve succeeded twice")
	}
	if v := a.Alloc(); v != MaxVCI-2 {
		t.Fatalf("Alloc = %d, want %d", v, MaxVCI-2)
	}
	if v := a.Alloc(); v != MaxVCI { // skips the reserved value
		t.Fatalf("Alloc = %d, want %d", v, MaxVCI)
	}
	if v := a.Alloc(); v != 0 {
		t.Fatalf("Alloc on exhausted space = %d, want 0", v)
	}
	// Freeing a reserved VCI makes it allocatable again.
	a.Free(MaxVCI - 1)
	if v := a.Alloc(); v != MaxVCI-1 {
		t.Fatalf("Alloc after Free = %d, want %d", v, MaxVCI-1)
	}
}
