package atm

// VCIAlloc hands out VCIs in O(1): a LIFO free list of released values
// backed by a high-water cursor for never-used ones. It replaces the
// linear next-free scans the switch trunks and the standalone daemon's
// local pool used to run on every call setup — the control-plane analog
// of the paper's direct-index argument for the data path (§6): the
// allocator never searches, it indexes.
//
// Allocation is fully deterministic: fresh VCIs ascend from min, and a
// released VCI is reused most-recently-freed first. VCIs below min
// (the reserved/PVC range) are never handed out.
type VCIAlloc struct {
	min  VCI
	next VCI   // next never-used value; past MaxVCI means exhausted
	free []VCI // LIFO of released values
	used map[VCI]bool
}

// NewVCIAlloc builds an allocator covering [min, MaxVCI]. min below 32
// is raised to 32, keeping the reserved VCI range untouchable.
func NewVCIAlloc(min VCI) *VCIAlloc {
	if min < 32 {
		min = 32
	}
	return &VCIAlloc{min: min, next: min, used: make(map[VCI]bool)}
}

// Alloc reserves an unused VCI, or 0 when the space is exhausted.
func (a *VCIAlloc) Alloc() VCI {
	for n := len(a.free); n > 0; n = len(a.free) {
		v := a.free[n-1]
		a.free = a.free[:n-1]
		if !a.used[v] { // skip entries reserved out-of-band since release
			a.used[v] = true
			return v
		}
	}
	for a.next <= MaxVCI {
		v := a.next
		a.next++
		if !a.used[v] {
			a.used[v] = true
			return v
		}
	}
	return 0
}

// Reserve marks a specific VCI in use (PVCs provisioned out-of-band).
// It reports false when the value is already taken.
func (a *VCIAlloc) Reserve(v VCI) bool {
	if a.used[v] {
		return false
	}
	a.used[v] = true
	return true
}

// Free releases a VCI for reuse. Double frees are ignored.
func (a *VCIAlloc) Free(v VCI) {
	if !a.used[v] {
		return
	}
	delete(a.used, v)
	a.free = append(a.free, v)
}

// InUse reports whether v is currently allocated or reserved.
func (a *VCIAlloc) InUse(v VCI) bool { return a.used[v] }

// Live reports how many VCIs are currently in use.
func (a *VCIAlloc) Live() int { return len(a.used) }
