// Package atm implements the ATM cell layer of the reproduced Xunet 2
// network: 53-byte cells with a UNI-format 5-byte header (GFC, VPI, VCI,
// PTI, CLP, HEC), header error control (CRC-8), and the ATM address and
// VCI types used throughout the stack.
//
// The paper's native-mode stack exposes the VCI directly to applications
// — "the Virtual Circuit Identifier (VCI) provides a single index into a
// table of protocol control blocks" — so VCI is the identity every other
// package keys on.
package atm

import (
	"errors"
	"fmt"
	"time"

	"xunet/internal/trace"
)

// CellSize is the size of an ATM cell on the wire.
const CellSize = 53

// HeaderSize is the size of the cell header.
const HeaderSize = 5

// PayloadSize is the cell payload capacity (the AAL5 SAR unit).
const PayloadSize = CellSize - HeaderSize

// VCI is a virtual circuit identifier. Xunet hands out 16-bit VCIs; the
// cookie capability in sighost is likewise 16 bits.
type VCI uint16

// MaxVCI bounds the PCB and switching tables (a direct array index, per
// the paper's non-multiplexed design).
const MaxVCI VCI = 4095

// String renders the VCI for logs and traces.
func (v VCI) String() string { return fmt.Sprintf("vci%d", uint16(v)) }

// VPI is a virtual path identifier. Xunet's testbed used a single
// virtual path; the type exists for header fidelity.
type VPI uint8

// Addr is an ATM endpoint address. Xunet used short dotted names such as
// "mh.rt" (Murray Hill router); this reproduction keeps them as opaque
// strings exactly as the signaling protocol treats them.
type Addr string

// PTI payload-type-indicator values. The low bit of the user-data PTI is
// the AAL-indicate bit: AAL5 sets it on the final cell of a frame.
type PTI uint8

const (
	// PTIUserData0 marks a user cell that does not end an AAL5 frame.
	PTIUserData0 PTI = 0
	// PTIUserData1 marks the final user cell of an AAL5 frame.
	PTIUserData1 PTI = 1
	// PTIOAM marks an operations-and-maintenance cell.
	PTIOAM PTI = 4
)

// Header is a decoded ATM cell header.
type Header struct {
	GFC byte // generic flow control (UNI only, 4 bits)
	VPI VPI
	VCI VCI
	PTI PTI  // 3 bits
	CLP bool // cell loss priority
}

// Cell is one ATM cell: header plus a full 48-byte payload. Cells are
// values; copying one copies its payload.
type Cell struct {
	Header
	Payload [PayloadSize]byte

	// TC/TCAt carry the causal-trace context of the frame this cell
	// belongs to through the simulated fabric: TC identifies the sampled
	// trace (zero when untraced) and TCAt the sim time the cell entered
	// the current hop. They are simulation metadata — Encode/Decode do
	// not carry them, exactly as a real cell has no room for them.
	TC   trace.Context
	TCAt time.Duration
}

// EndOfFrame reports whether this cell carries the AAL-indicate bit
// (final cell of an AAL5 frame).
func (c *Cell) EndOfFrame() bool { return c.PTI&1 == 1 }

// hecTable is the CRC-8 table for the HEC polynomial
// x^8 + x^2 + x + 1 (0x07).
var hecTable [256]byte

func init() {
	for i := 0; i < 256; i++ {
		crc := byte(i)
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
		hecTable[i] = crc
	}
}

// hecCoset is XORed into the HEC per I.432 to improve cell delineation.
const hecCoset = 0x55

// HEC computes the header error control byte over the first four header
// octets.
func HEC(h4 [4]byte) byte {
	var crc byte
	for _, b := range h4 {
		crc = hecTable[crc^b]
	}
	return crc ^ hecCoset
}

// Errors returned by Decode.
var (
	ErrShortCell = errors.New("atm: cell shorter than 53 bytes")
	ErrBadHEC    = errors.New("atm: header error control mismatch")
)

// Encode serializes the cell into a fresh 53-byte slice.
func (c *Cell) Encode() []byte {
	out := make([]byte, CellSize)
	c.EncodeTo(out)
	return out
}

// EncodeTo serializes the cell into buf, which must hold at least
// CellSize bytes. It returns the number of bytes written.
func (c *Cell) EncodeTo(buf []byte) int {
	_ = buf[CellSize-1]
	vci := uint16(c.VCI)
	buf[0] = c.GFC<<4 | byte(c.VPI)>>4
	buf[1] = byte(c.VPI)<<4 | byte(vci>>12)
	buf[2] = byte(vci >> 4)
	buf[3] = byte(vci)<<4 | byte(c.PTI&0x7)<<1
	if c.CLP {
		buf[3] |= 1
	}
	buf[4] = HEC([4]byte{buf[0], buf[1], buf[2], buf[3]})
	copy(buf[HeaderSize:], c.Payload[:])
	return CellSize
}

// Decode parses a 53-byte wire cell, verifying the HEC.
func Decode(buf []byte) (Cell, error) {
	var c Cell
	if len(buf) < CellSize {
		return c, ErrShortCell
	}
	if HEC([4]byte{buf[0], buf[1], buf[2], buf[3]}) != buf[4] {
		return c, ErrBadHEC
	}
	c.GFC = buf[0] >> 4
	c.VPI = VPI(buf[0]<<4 | buf[1]>>4)
	c.VCI = VCI(uint16(buf[1]&0x0f)<<12 | uint16(buf[2])<<4 | uint16(buf[3])>>4)
	c.PTI = PTI(buf[3] >> 1 & 0x7)
	c.CLP = buf[3]&1 == 1
	copy(c.Payload[:], buf[HeaderSize:])
	return c, nil
}

// String summarizes the cell header for traces.
func (c *Cell) String() string {
	eof := ""
	if c.EndOfFrame() {
		eof = " EOF"
	}
	return fmt.Sprintf("cell{vpi=%d %v pti=%d%s}", c.VPI, c.VCI, c.PTI, eof)
}
