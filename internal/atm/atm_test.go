package atm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := Cell{Header: Header{GFC: 0xA, VPI: 17, VCI: 1234, PTI: PTIUserData1, CLP: true}}
	for i := range c.Payload {
		c.Payload[i] = byte(i)
	}
	wire := c.Encode()
	if len(wire) != CellSize {
		t.Fatalf("wire size = %d", len(wire))
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != c.Header {
		t.Fatalf("header round trip: got %+v want %+v", got.Header, c.Header)
	}
	if got.Payload != c.Payload {
		t.Fatal("payload round trip mismatch")
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode(make([]byte, 52)); err != ErrShortCell {
		t.Fatalf("err = %v, want ErrShortCell", err)
	}
}

func TestDecodeBadHEC(t *testing.T) {
	c := Cell{Header: Header{VCI: 99}}
	wire := c.Encode()
	wire[2] ^= 0x40 // corrupt a VCI bit
	if _, err := Decode(wire); err != ErrBadHEC {
		t.Fatalf("err = %v, want ErrBadHEC", err)
	}
}

func TestHECDetectsAllSingleBitHeaderErrors(t *testing.T) {
	c := Cell{Header: Header{GFC: 3, VPI: 5, VCI: 777, PTI: PTIOAM}}
	wire := c.Encode()
	for byteIdx := 0; byteIdx < HeaderSize; byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), wire...)
			mut[byteIdx] ^= 1 << bit
			if _, err := Decode(mut); err != ErrBadHEC {
				t.Fatalf("single-bit error at byte %d bit %d undetected", byteIdx, bit)
			}
		}
	}
}

func TestEndOfFrame(t *testing.T) {
	c := Cell{Header: Header{PTI: PTIUserData1}}
	if !c.EndOfFrame() {
		t.Fatal("PTIUserData1 not EOF")
	}
	c.PTI = PTIUserData0
	if c.EndOfFrame() {
		t.Fatal("PTIUserData0 is EOF")
	}
}

func TestEncodeTo(t *testing.T) {
	c := Cell{Header: Header{VCI: 42}}
	buf := make([]byte, CellSize)
	if n := c.EncodeTo(buf); n != CellSize {
		t.Fatalf("EncodeTo = %d", n)
	}
	if !bytes.Equal(buf, c.Encode()) {
		t.Fatal("EncodeTo differs from Encode")
	}
}

func TestVCIFieldWidth(t *testing.T) {
	// All 16 VCI bits must survive the header packing.
	for _, v := range []VCI{0, 1, 0x00FF, 0x0F0F, 0xF0F0, 0xFFFF} {
		c := Cell{Header: Header{VCI: v}}
		got, err := Decode(c.Encode())
		if err != nil {
			t.Fatalf("vci %d: %v", v, err)
		}
		if got.VCI != v {
			t.Fatalf("vci %d decoded as %d", v, got.VCI)
		}
	}
}

func TestStringForms(t *testing.T) {
	if VCI(7).String() != "vci7" {
		t.Fatalf("VCI.String = %q", VCI(7).String())
	}
	c := Cell{Header: Header{VPI: 1, VCI: 2, PTI: PTIUserData1}}
	if got := c.String(); got != "cell{vpi=1 vci2 pti=1 EOF}" {
		t.Fatalf("Cell.String = %q", got)
	}
}

// Property: every representable header round-trips exactly.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(gfc byte, vpi uint8, vci uint16, pti uint8, clp bool, payload [PayloadSize]byte) bool {
		c := Cell{
			Header:  Header{GFC: gfc & 0xF, VPI: VPI(vpi), VCI: VCI(vci), PTI: PTI(pti & 0x7), CLP: clp},
			Payload: payload,
		}
		got, err := Decode(c.Encode())
		return err == nil && got.Header == c.Header && got.Payload == c.Payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the HEC is a function of the first four header bytes only.
func TestQuickHECStability(t *testing.T) {
	f := func(h [4]byte) bool {
		a, b := HEC(h), HEC(h)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	c := Cell{Header: Header{VCI: 1000, PTI: PTIUserData1}}
	buf := make([]byte, CellSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.EncodeTo(buf)
	}
}

func BenchmarkDecode(b *testing.B) {
	c := Cell{Header: Header{VCI: 1000}}
	wire := c.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
