package xswitch

import (
	"reflect"
	"testing"
	"time"

	"xunet/internal/atm"
	"xunet/internal/qos"
	"xunet/internal/sim"
)

// Cell-train batching must be invisible in virtual time: every scenario
// here runs once with TrainBurst=1 (the per-cell discipline the trains
// replace) and once with a large burst, and the receiver-side traces —
// cells, exact arrival times, per-class counters, drop and unroutable
// counts — must match field for field.

// trainTrace is the observable outcome of a scenario.
type trainTrace struct {
	Cells      []atm.Cell
	Times      []time.Duration
	Class      ClassCellStats
	Unroutable uint64
	Final      time.Duration
}

// trainRig wires routerA — swA — swB — routerB with every link sharing
// cfg, so queue limits and burst length apply on all three hops.
func trainRig(t *testing.T, cfg LinkConfig) (*sim.Engine, *Fabric, *Endpoint, *collector) {
	t.Helper()
	e := sim.New(1)
	f := NewFabric(e)
	swA := f.MustAddSwitch("sw-A")
	swB := f.MustAddSwitch("sw-B")
	f.ConnectSwitches(swA, swB, cfg)
	ca, cb := &collector{e: e}, &collector{e: e}
	epA, err := f.Attach("mh.rt", ca, swA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach("ucb.rt", cb, swB, cfg); err != nil {
		t.Fatal(err)
	}
	return e, f, epA, cb
}

func runTrainScenario(t *testing.T, cfg LinkConfig, scenario func(e *sim.Engine, f *Fabric, epA *Endpoint)) trainTrace {
	t.Helper()
	e, f, epA, cb := trainRig(t, cfg)
	scenario(e, f, epA)
	e.Run()
	var unroutable uint64
	for _, sw := range f.switches {
		unroutable += sw.Unroutable
	}
	return trainTrace{
		Cells:      cb.cells,
		Times:      cb.times,
		Class:      f.ClassStats(),
		Unroutable: unroutable,
		Final:      e.Now(),
	}
}

// setupClassVCs provisions one VC per service class, in fixed order.
func setupClassVCs(t *testing.T, f *Fabric) [3]*VC {
	t.Helper()
	var vcs [3]*VC
	for i, q := range []qos.QoS{
		{Class: qos.BestEffort},
		{Class: qos.VBR, BandwidthKbs: 4_000},
		{Class: qos.CBR, BandwidthKbs: 8_000},
	} {
		vc, err := f.SetupVC("mh.rt", "ucb.rt", q)
		if err != nil {
			t.Fatalf("SetupVC class %d: %v", i, err)
		}
		vcs[i] = vc
	}
	return vcs
}

func cellOn(vc *VC, seq byte) atm.Cell {
	c := atm.Cell{Header: atm.Header{VCI: vc.SrcVCI, PTI: atm.PTIUserData0}}
	c.Payload[0] = seq
	return c
}

func TestCellTrainEquivalence(t *testing.T) {
	base := LinkConfig{RateBps: 45_000_000, Delay: 2 * time.Millisecond, QueueCells: 2048}
	cases := []struct {
		name     string
		cfg      LinkConfig // TrainBurst filled in per run
		minCells int        // sanity floor on delivered cells
		scenario func(e *sim.Engine, f *Fabric, epA *Endpoint)
	}{
		{
			// A mixed burst far longer than any one class's WRR credit:
			// serving it crosses CBR→VBR→BestEffort boundaries and a
			// credit replenish inside a single train.
			name:     "wrr straddle across class switch",
			cfg:      base,
			minCells: 60,
			scenario: func(e *sim.Engine, f *Fabric, epA *Endpoint) {
				vcs := setupClassVCs(t, f)
				e.Schedule(0, func() {
					for i := 0; i < 20; i++ {
						epA.SendCell(cellOn(vcs[2], byte(i)))     // CBR
						epA.SendCell(cellOn(vcs[1], byte(100+i))) // VBR
						epA.SendCell(cellOn(vcs[0], byte(200+i))) // BestEffort
					}
				})
			},
		},
		{
			// A second blast lands while the first train is mid-flight:
			// the train must truncate and the overflow check must see
			// the queue depth the per-cell discipline would.
			name:     "queue overflow mid-train",
			cfg:      LinkConfig{RateBps: 45_000_000, Delay: 2 * time.Millisecond, QueueCells: 8},
			minCells: 8,
			scenario: func(e *sim.Engine, f *Fabric, epA *Endpoint) {
				vcs := setupClassVCs(t, f)
				e.Schedule(0, func() {
					for i := 0; i < 8; i++ {
						epA.SendCell(cellOn(vcs[0], byte(i)))
					}
				})
				// DS3 serializes a cell in ~9.4µs; 30µs is ~3 slots in.
				e.Schedule(30*time.Microsecond, func() {
					for i := 0; i < 24; i++ {
						epA.SendCell(cellOn(vcs[0], byte(50+i)))
					}
				})
			},
		},
		{
			// The VC is torn down while its cells are still propagating:
			// cells already on the wire lose their translation entries
			// and must count as unroutable at the same instants.
			name:     "vc teardown with cells in flight",
			cfg:      base,
			minCells: 0,
			scenario: func(e *sim.Engine, f *Fabric, epA *Endpoint) {
				vcs := setupClassVCs(t, f)
				e.Schedule(0, func() {
					for i := 0; i < 10; i++ {
						epA.SendCell(cellOn(vcs[2], byte(i)))
					}
				})
				// All 10 serialize within ~95µs; arrivals start at 2ms.
				e.Schedule(500*time.Microsecond, func() {
					vcs[2].Release()
				})
			},
		},
		{
			// Staggered sends that repeatedly interrupt active trains at
			// non-slot-aligned instants exercise truncate()'s rounding.
			name:     "repeated truncation at odd offsets",
			cfg:      base,
			minCells: 30,
			scenario: func(e *sim.Engine, f *Fabric, epA *Endpoint) {
				vcs := setupClassVCs(t, f)
				for k := 0; k < 10; k++ {
					k := k
					at := time.Duration(k) * 7 * time.Microsecond
					e.Schedule(at, func() {
						epA.SendCell(cellOn(vcs[k%3], byte(k)))
						epA.SendCell(cellOn(vcs[(k+1)%3], byte(k+10)))
						epA.SendCell(cellOn(vcs[(k+2)%3], byte(k+20)))
					})
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			perCell := tc.cfg
			perCell.TrainBurst = 1
			batched := tc.cfg
			batched.TrainBurst = 32
			want := runTrainScenario(t, perCell, tc.scenario)
			got := runTrainScenario(t, batched, tc.scenario)
			if len(want.Cells) < tc.minCells {
				t.Fatalf("scenario too weak: only %d cells delivered", len(want.Cells))
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("burst=32 diverges from burst=1:\n per-cell: %d cells, class=%+v, unroutable=%d, final=%v\n batched:  %d cells, class=%+v, unroutable=%d, final=%v",
					len(want.Cells), want.Class, want.Unroutable, want.Final,
					len(got.Cells), got.Class, got.Unroutable, got.Final)
				for i := 0; i < len(want.Cells) && i < len(got.Cells); i++ {
					if want.Cells[i] != got.Cells[i] || want.Times[i] != got.Times[i] {
						t.Fatalf("first divergence at arrival %d: per-cell (%v, vci=%d, p0=%d) vs batched (%v, vci=%d, p0=%d)",
							i, want.Times[i], want.Cells[i].VCI, want.Cells[i].Payload[0],
							got.Times[i], got.Cells[i].VCI, got.Cells[i].Payload[0])
					}
				}
				t.Fatalf("cell count mismatch: %d vs %d", len(want.Cells), len(got.Cells))
			}
		})
	}
}

// TestTrainTruncationRestoresQueueState drives truncate() directly: a
// send mid-train must leave counters and queue depths exactly as if no
// train had been planned past the interruption point.
func TestTrainTruncationRestoresQueueState(t *testing.T) {
	cfg := LinkConfig{RateBps: 45_000_000, Delay: 2 * time.Millisecond, QueueCells: 2048, TrainBurst: 32}
	e, f, epA, cb := trainRig(t, cfg)
	vc, err := f.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}
	e.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			epA.SendCell(cellOn(vc, byte(i)))
		}
	})
	// ~9.4µs per cell: at 40µs, 5 slots have logically passed.
	e.Schedule(40*time.Microsecond, func() {
		up := epA.uplink
		if up.trainLen >= 20 {
			t.Errorf("train not truncated: len=%d", up.trainLen)
		}
		if int(up.Sent)-up.trainLen-len(cb.cells) < 0 {
			t.Errorf("Sent=%d below committed train", up.Sent)
		}
		epA.SendCell(cellOn(vc, 99))
	})
	e.Run()
	if len(cb.cells) != 21 {
		t.Fatalf("delivered %d cells, want 21", len(cb.cells))
	}
	if cb.cells[20].Payload[0] != 99 {
		t.Fatalf("interrupting cell arrived out of order: last p0=%d", cb.cells[20].Payload[0])
	}
	for i := 1; i < len(cb.times); i++ {
		if cb.times[i] <= cb.times[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d: %v then %v", i, cb.times[i-1], cb.times[i])
		}
	}
}
