// Package xswitch simulates the Xunet 2 wide-area ATM network: cell
// switches with per-port VCI translation tables, finite per-class output
// queues drained by a weighted-round-robin scheduler (the scheduling
// discipline of Saran, Keshav, Kalmanek and Morgan, the paper's
// reference [17]), DS3 and OC-12 trunk models, and hop-by-hop switched
// virtual circuit setup with per-link admission control.
//
// The paper's testbed was "two routers (SGI 4D/30 workstations), with a
// three hop (two switch) ATM path between them"; Topology helpers in
// this package rebuild that testbed and the five-site Xunet map.
//
// Control-plane note: Xunet's switches were programmed by a proprietary
// signaling protocol. This reproduction keeps the switch tables and
// per-hop VCI allocation real but drives them through direct Fabric
// calls from the signaling entity, charging a per-hop programming cost
// in virtual time (DESIGN.md §2 records the substitution).
package xswitch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"xunet/internal/atm"
	"xunet/internal/faults"
	"xunet/internal/obs"
	"xunet/internal/obs/tseries"
	"xunet/internal/prof"
	"xunet/internal/qos"
	"xunet/internal/sim"
	"xunet/internal/trace"
)

// LinkConfig describes one direction of a cell trunk.
type LinkConfig struct {
	RateBps    uint64        // line rate
	Delay      time.Duration // propagation delay
	QueueCells int           // per-class output queue limit, in cells
	// TrainBurst caps how many cells one scheduled transmit event plans
	// ahead (a "cell train"). 0 means DefaultTrainBurst. 1 reproduces
	// the one-event-per-cell discipline exactly; any value yields
	// bit-identical virtual arrival times (see trunk.truncate).
	TrainBurst int
}

// DefaultTrainBurst is the cell-train length used when LinkConfig leaves
// TrainBurst zero. A 1400-byte frame is ~30 cells, so one train per
// frame is the common case.
const DefaultTrainBurst = 32

// DS3 returns the 45 Mb/s long-distance trunk profile of Xunet 2.
func DS3(delay time.Duration) LinkConfig {
	return LinkConfig{RateBps: 45_000_000, Delay: delay, QueueCells: 2048}
}

// OC12 returns the 622 Mb/s optically-amplified trunk profile.
func OC12(delay time.Duration) LinkConfig {
	return LinkConfig{RateBps: 622_000_000, Delay: delay, QueueCells: 4096}
}

// TAXI returns the host-interface attachment profile (the Hobbit board's
// 100 Mb/s-class local link).
func TAXI() LinkConfig {
	return LinkConfig{RateBps: 100_000_000, Delay: 10 * time.Microsecond, QueueCells: 2048}
}

// CellSink receives cells delivered to an attached endpoint.
type CellSink interface {
	ReceiveCell(c atm.Cell)
}

// perHopSetupCost is the virtual time charged per switch programmed
// during VC setup.
const perHopSetupCost = 500 * time.Microsecond

// Errors from the fabric.
var (
	ErrNoPath     = errors.New("xswitch: no path between endpoints")
	ErrNoVCI      = errors.New("xswitch: VCI space exhausted on link")
	ErrUnknownVC  = errors.New("xswitch: unknown virtual circuit")
	ErrDupName    = errors.New("xswitch: duplicate element name")
	ErrNotRunning = errors.New("xswitch: element not attached")
	// ErrCrossShard reports a runtime SetupVC whose path would leave the
	// caller's shard. Cross-shard circuits must be provisioned at build
	// time, before SealCrossShard.
	ErrCrossShard = errors.New("xswitch: cross-shard VC setup after seal")
)

// node is anything cells move between: a switch or an endpoint.
type node interface {
	name() string
	// inject receives a cell arriving over link l.
	inject(l *trunk, c atm.Cell)
	// domainOf exposes the element's shard binding.
	domainOf() *domain
}

// domain binds a fabric element to its shard: the engine its events run
// on plus optional per-domain fault and trace planes that override the
// fabric-wide ones. In a flat (unsharded) fabric every element shares
// Fabric.Engine and the overrides stay nil.
type domain struct {
	eng    *sim.Engine
	faults *faults.Plane
	traceC *trace.Collector
}

// trunk is one direction of a cell link between two nodes.
type trunk struct {
	fabric *Fabric
	from   node
	to     node
	cfg    LinkConfig
	book   *qos.Book
	ser    time.Duration // per-cell serialization time (0 if RateBps is 0)

	// eng is the engine this trunk's events run on — the sending
	// element's shard. xeng is non-nil only for a boundary trunk, one
	// whose far end lives on a different shard: cells then cross as
	// pooled records posted at their exact arrival times, and the
	// trunk's propagation delay funds the shard group's lookahead.
	eng  *sim.Engine
	xeng *sim.Engine

	// xmu guards xfree, the boundary trunk's record pool: records are
	// taken by the sending shard in drain and returned by the receiving
	// shard in xdeliver, the one spot where two shards touch one trunk.
	xmu   sync.Mutex
	xfree []*xcell

	// Three class queues (index qos.Class) drained by WRR.
	queues   [3]sim.Ring[atm.Cell]
	draining bool
	rrCredit [3]int

	// Cell-train state. While draining, slots[0:trainLen] records the
	// WRR picks planned at trainStart, each with the credit vector as it
	// stood before that pick, so a send arriving mid-train can roll back
	// the picks whose logical pick times have not yet been reached
	// (truncate) and leave the queues and credits exactly as the
	// one-event-per-cell discipline would have them.
	trainStart time.Duration
	trainLen   int
	slots      []trainSlot
	txTimer    sim.Timer
	txFn       func()

	// In-flight cells awaiting delivery at t.to, ordered by arrival
	// time. One self-rescheduling pooled event (delivFn) fires at each
	// exact per-cell arrival time, so receivers observe timing identical
	// to per-cell propagation events.
	inflight sim.Ring[flightCell]
	delivOn  bool
	delivFn  func()

	// VCI allocation on this trunk. pair is the reverse trunk of the
	// duplex link; the allocator is shared between both directions so
	// that a machine's send and receive VCIs never collide numerically
	// in its VCI-indexed protocol control block table.
	pair  *trunk
	alloc *atm.VCIAlloc

	// Counters for experiments.
	Sent         uint64
	Dropped      uint64
	perClass     [3]uint64
	perClassDrop [3]uint64
	classVCIs    map[atm.VCI]qos.Class

	// Fault-plane state (used only when fabric.Faults is non-nil):
	// geBad is the trunk's Gilbert–Elliott burst-loss state, down marks
	// a flapped-out trunk that drops every cell.
	geBad bool
	down  bool

	// qPeak, when time-series collection is armed, accumulates the
	// between-tick queue-depth high-water mark (nil costs one pointer
	// check in send; see the obsgate benchmark).
	qPeak *tseries.Peak

	// Execution-profiler attribution labels, interned at construction
	// (0 — the root label — when no profiler is attached): transmit
	// events vs. delivery events, so the profile separates serialization
	// scheduling from cell injection.
	lblTx    prof.LabelID
	lblDeliv prof.LabelID
}

// wrrWeights drain CBR most aggressively, then VBR, then best effort —
// a two-level approximation of the hierarchical round robin of [17].
var wrrWeights = [3]int{1, 4, 16} // BestEffort, VBR, CBR (by qos.Class value)

// trainSlot is one planned WRR pick in the active cell train.
type trainSlot struct {
	cell         atm.Cell
	cls          qos.Class
	creditBefore [3]int // rrCredit immediately before this pick
}

// flightCell is a transmitted cell awaiting delivery at the far node.
type flightCell struct {
	cell atm.Cell
	at   time.Duration // exact virtual arrival time
}

func newTrunk(f *Fabric, from, to node, cfg LinkConfig) *trunk {
	if cfg.QueueCells <= 0 {
		cfg.QueueCells = 256
	}
	if cfg.TrainBurst <= 0 {
		cfg.TrainBurst = DefaultTrainBurst
	}
	feng, teng := from.domainOf().eng, to.domainOf().eng
	if feng != teng {
		// Boundary trunk: one cell per transmit event, so truncate is a
		// no-op and a posted arrival never needs rolling back.
		cfg.TrainBurst = 1
	}
	t := &trunk{
		fabric:    f,
		from:      from,
		to:        to,
		cfg:       cfg,
		eng:       feng,
		book:      qos.NewBook(cfg.RateBps / 1000), // book in kb/s
		slots:     make([]trainSlot, cfg.TrainBurst),
		classVCIs: make(map[atm.VCI]qos.Class),
	}
	if feng != teng {
		t.xeng = teng
	}
	if cfg.RateBps > 0 {
		t.ser = time.Duration(uint64(atm.CellSize*8) * uint64(time.Second) / cfg.RateBps)
	}
	t.txFn = func() {
		t.txTimer = sim.Timer{}
		t.drain()
	}
	t.delivFn = t.deliver
	t.lblTx = feng.ProfLabel("xswitch.trunk.tx")
	t.lblDeliv = feng.ProfLabel("xswitch.trunk.deliver")
	return t
}

// faultPlane resolves the plane charged for this trunk's cells: the
// sending element's domain plane, else the fabric-wide one.
func (t *trunk) faultPlane() *faults.Plane {
	if fp := t.from.domainOf().faults; fp != nil {
		return fp
	}
	return t.fabric.Faults
}

// traceCollector resolves the collector arrival spans are recorded to:
// the receiving element's domain collector, else the fabric-wide one.
// Recording happens at delivery, on the receiving shard, so the
// receiver's collector is the race-free and deterministic choice.
func (t *trunk) traceCollector() *trace.Collector {
	if tc := t.to.domainOf().traceC; tc != nil {
		return tc
	}
	return t.fabric.TraceC
}

// xcell is one pooled cross-shard cell record: fn is pre-bound to
// deliver the carried cell on the receiving shard and recycle the
// record, so the steady-state boundary crossing allocates nothing.
type xcell struct {
	t    *trunk
	cell atm.Cell
	fn   func()
}

func (t *trunk) getXCell() *xcell {
	t.xmu.Lock()
	if n := len(t.xfree); n > 0 {
		r := t.xfree[n-1]
		t.xfree[n-1] = nil
		t.xfree = t.xfree[:n-1]
		t.xmu.Unlock()
		return r
	}
	t.xmu.Unlock()
	r := &xcell{t: t}
	r.fn = func() { r.t.xdeliver(r) }
	return r
}

// xdeliver runs on the receiving shard at the cell's exact arrival
// time: recycle the record, trace the frame span, inject.
func (t *trunk) xdeliver(r *xcell) {
	c := r.cell
	r.cell = atm.Cell{}
	t.xmu.Lock()
	t.xfree = append(t.xfree, r)
	t.xmu.Unlock()
	if c.TC.Sampled() && c.EndOfFrame() {
		if tc := t.traceCollector(); tc != nil {
			tc.Record(c.TC, "xswitch", t.from.name()+">"+t.to.name(), c.TCAt, t.xeng.Now())
		}
	}
	t.to.inject(t, c)
}

// allocVCI reserves an unused VCI on this trunk (and its reverse
// direction: the free-list allocator is shared across the duplex pair).
func (t *trunk) allocVCI() (atm.VCI, error) {
	if t.alloc == nil { // trunk wired up without pairing (tests)
		t.alloc = atm.NewVCIAlloc(32)
	}
	v := t.alloc.Alloc()
	if v == 0 {
		return 0, ErrNoVCI
	}
	return v, nil
}

func (t *trunk) freeVCI(v atm.VCI) {
	delete(t.classVCIs, v)
	if t.alloc != nil {
		t.alloc.Free(v)
	}
}

// send enqueues a cell for transmission, classifying it by its VCI's
// service class. Queue overflow drops the cell (AAL5 detects the loss).
// If a cell train is in flight, picks whose logical pick times are still
// in the future are rolled back first, so the overflow check and the
// eventual WRR order see exactly the state the per-cell discipline
// would.
func (t *trunk) send(c atm.Cell) {
	if t.draining {
		t.truncate()
	}
	cls := t.classVCIs[c.VCI] // zero value = BestEffort
	if fp := t.faultPlane(); fp != nil {
		if t.down {
			t.Dropped++
			t.perClassDrop[cls]++
			fp.TrunkDownDrop(c.TC)
			return
		}
		if fp.CellDrop(&t.geBad, c.TC) {
			t.Dropped++
			t.perClassDrop[cls]++
			return
		}
		if fp.CellCorrupt(c.TC) {
			// Cells are values, so flipping a payload byte corrupts
			// only this copy; the AAL5 CRC-32 rejects the frame at
			// reassembly, exactly where real hardware would.
			c.Payload[0] ^= 0xA5
		}
	}
	if c.TC.Sampled() {
		// Mark the hop entry time so deliver can record this trunk's
		// queueing + serialization + propagation as one span.
		c.TCAt = t.eng.Now()
	}
	if t.queues[cls].Len() >= t.cfg.QueueCells {
		t.Dropped++
		t.perClassDrop[cls]++
		return
	}
	t.queues[cls].Push(c)
	t.qPeak.Note(int64(t.queues[0].Len() + t.queues[1].Len() + t.queues[2].Len()))
	if !t.draining {
		t.drain()
	}
}

// queuedAny reports whether any class queue holds a cell.
func (t *trunk) queuedAny() bool {
	return t.queues[0].Len() > 0 || t.queues[1].Len() > 0 || t.queues[2].Len() > 0
}

// drain plans the next cell train: up to TrainBurst WRR picks made at
// the current instant, with logical pick times trainStart + j*ser. One
// pooled event (txFn) fires when the last planned cell finishes
// serializing; each picked cell joins the in-flight ring with its exact
// arrival time trainStart + (j+1)*ser + Delay.
func (t *trunk) drain() {
	if !t.queuedAny() {
		// The per-cell discipline's failing pick replenished credits on
		// its first empty pass; preserve that side effect.
		t.rrCredit = wrrWeights
		t.draining = false
		return
	}
	t.draining = true
	e := t.eng
	t.trainStart = e.Now()
	n := 0
	for n < t.cfg.TrainBurst && t.queuedAny() {
		credit := t.rrCredit
		cls := t.pick()
		c := t.queues[cls].Pop()
		t.Sent++
		t.perClass[cls]++
		t.slots[n] = trainSlot{cell: c, cls: cls, creditBefore: credit}
		if t.xeng != nil {
			// Boundary: the cell crosses shards as a pooled record posted
			// at its exact arrival time. ser+Delay ≥ the group lookahead
			// by construction (the testbed sizes the lookahead from the
			// smallest boundary-trunk delay), so Post never violates the
			// conservative bound.
			r := t.getXCell()
			r.cell = c
			e.PostSized(t.xeng, time.Duration(n+1)*t.ser+t.cfg.Delay, atm.CellSize, r.fn)
		} else {
			t.inflight.Push(flightCell{cell: c, at: t.trainStart + time.Duration(n+1)*t.ser + t.cfg.Delay})
		}
		n++
	}
	t.trainLen = n
	if t.xeng == nil && !t.delivOn {
		// delivOn false implies the in-flight ring was empty, so the
		// next arrival is this train's first cell.
		t.delivOn = true
		e.ScheduleL(t.ser+t.cfg.Delay, t.lblDeliv, t.delivFn)
	}
	t.txTimer = e.ScheduleL(time.Duration(n)*t.ser, t.lblTx, t.txFn)
}

// truncate rolls the active train back to the picks whose logical pick
// times (trainStart + j*ser) have already passed. A pick at exactly the
// current instant is rolled back too: under the per-cell discipline the
// enqueue triggering this call would have run before that boundary's
// pick (its causing event was scheduled earlier, since propagation
// delays exceed cell serialization times on every profile). The rolled
// back cells return to the front of their class queues, the credit
// vector rewinds to the first uncommitted pick, and the transmit event
// is pulled in to the end of the committed prefix.
func (t *trunk) truncate() {
	if t.ser == 0 {
		return // infinite rate: every pick was instantaneous
	}
	if t.xeng != nil {
		return // boundary trunks train one cell; nothing uncommitted
	}
	elapsed := t.eng.Now() - t.trainStart
	k := int(elapsed / t.ser)
	if elapsed%t.ser != 0 {
		k++
	}
	if k < 1 {
		k = 1 // slot 0 was picked at trainStart, before this send
	}
	if k >= t.trainLen {
		return
	}
	for j := t.trainLen - 1; j >= k; j-- {
		s := t.slots[j]
		t.inflight.PopTail()
		t.queues[s.cls].PushFront(s.cell)
		t.rrCredit = s.creditBefore
		t.Sent--
		t.perClass[s.cls]--
	}
	t.trainLen = k
	t.txTimer.Stop()
	t.txTimer = t.eng.ScheduleL(t.trainStart+time.Duration(k)*t.ser-t.eng.Now(), t.lblTx, t.txFn)
}

// deliver fires at the arrival time of the in-flight head, injects every
// cell due now, and re-arms itself for the next arrival.
func (t *trunk) deliver() {
	e := t.eng
	now := e.Now()
	for t.inflight.Len() > 0 && t.inflight.At(0).at <= now {
		fc := t.inflight.Pop()
		if fc.cell.TC.Sampled() && fc.cell.EndOfFrame() {
			// One span per AAL5 frame per trunk, recorded on the frame's
			// final cell: [hop entry .. last-cell arrival] covers the
			// whole frame's transit of this link.
			if tc := t.traceCollector(); tc != nil {
				tc.Record(fc.cell.TC, "xswitch",
					t.from.name()+">"+t.to.name(), fc.cell.TCAt, now)
			}
		}
		t.to.inject(t, fc.cell)
	}
	if t.inflight.Len() > 0 {
		e.ScheduleL(t.inflight.At(0).at-now, t.lblDeliv, t.delivFn)
	} else {
		t.delivOn = false
	}
}

// pick chooses the next class queue to serve: highest class first until
// its WRR credit is spent, then the next, replenishing when all are
// exhausted. At least one queue must be non-empty.
func (t *trunk) pick() qos.Class {
	for pass := 0; pass < 2; pass++ {
		for cls := int(qos.CBR); cls >= int(qos.BestEffort); cls-- {
			if t.queues[cls].Len() > 0 && t.rrCredit[cls] > 0 {
				t.rrCredit[cls]--
				return qos.Class(cls)
			}
		}
		// Replenish credits and retry once.
		t.rrCredit = wrrWeights
	}
	panic("xswitch: pick with no queued cells")
}

// Stats reports (sent, dropped) cell counts for the trunk.
func (t *trunk) stats() (sent, dropped uint64) { return t.Sent, t.Dropped }

// Switch is one ATM cell switch.
type Switch struct {
	Name   string
	fabric *Fabric
	dom    domain
	trunks []*trunk // outgoing trunks
	table  map[tabKey]tabVal

	// Switched counts cells relayed; Unroutable counts cells with no
	// table entry.
	Switched   uint64
	Unroutable uint64
}

func (s *Switch) domainOf() *domain { return &s.dom }

// Eng returns the engine this switch's events run on.
func (s *Switch) Eng() *sim.Engine { return s.dom.eng }

// SetFaults overrides the fabric-wide fault plane for trunks this
// switch originates (nil restores the fabric-wide plane). Sharded
// testbeds give each domain its own seeded plane.
func (s *Switch) SetFaults(fp *faults.Plane) { s.dom.faults = fp }

// SetTrace overrides the fabric-wide trace collector for cells arriving
// at this switch.
func (s *Switch) SetTrace(tc *trace.Collector) { s.dom.traceC = tc }

type tabKey struct {
	in  *trunk // arriving trunk
	vci atm.VCI
}

type tabVal struct {
	out *trunk
	vci atm.VCI
}

func (s *Switch) name() string { return s.Name }

// inject switches an arriving cell: translate (port, VCI) and forward.
func (s *Switch) inject(l *trunk, c atm.Cell) {
	v, ok := s.table[tabKey{in: l, vci: c.VCI}]
	if !ok {
		s.Unroutable++
		return
	}
	s.Switched++
	c.VCI = v.vci
	v.out.send(c)
}

// Endpoint is an attachment point for a host interface.
type Endpoint struct {
	Addr   atm.Addr
	fabric *Fabric
	dom    domain
	sink   CellSink
	uplink *trunk // endpoint -> first switch
	// downlink is the reverse trunk (switch -> endpoint); kept for
	// VCI bookkeeping on the receiving side.
	downlink *trunk
}

func (ep *Endpoint) domainOf() *domain { return &ep.dom }

// Eng returns the engine this endpoint's events run on.
func (ep *Endpoint) Eng() *sim.Engine { return ep.dom.eng }

// SetFaults overrides the fabric-wide fault plane for this endpoint's
// uplink transmissions.
func (ep *Endpoint) SetFaults(fp *faults.Plane) { ep.dom.faults = fp }

// SetTrace overrides the fabric-wide trace collector for cells arriving
// at this endpoint.
func (ep *Endpoint) SetTrace(tc *trace.Collector) { ep.dom.traceC = tc }

func (ep *Endpoint) name() string { return string(ep.Addr) }

func (ep *Endpoint) inject(l *trunk, c atm.Cell) {
	if ep.sink != nil {
		ep.sink.ReceiveCell(c)
	}
}

// SendCell transmits one cell from the endpoint into the fabric.
func (ep *Endpoint) SendCell(c atm.Cell) { ep.uplink.send(c) }

// Fabric is the whole ATM network: switches, endpoints and trunks.
type Fabric struct {
	Engine    *sim.Engine
	switches  map[string]*Switch
	endpoints map[atm.Addr]*Endpoint

	// spaces holds one VC namespace per shard engine, so concurrent
	// runtime SVC setup on different shards never touches shared state.
	// The map itself is built single-threaded (element creation) and is
	// read-only afterwards. IDs embed the shard in the high bits so the
	// namespaces stay disjoint.
	spaces map[*sim.Engine]*vcSpace

	// sealed marks the end of build-time provisioning: from then on a
	// SetupVC whose path leaves the caller's shard fails with
	// ErrCrossShard instead of mutating another shard's switch tables.
	sealed bool

	// Obs is the fabric's telemetry registry (the fabric is shared
	// infrastructure, so it does not belong to any one machine's
	// registry). Per-class cell counts and the active-VC level are
	// registered as read-through metrics over the trunk counters.
	Obs *obs.Registry

	// TraceC records per-hop cell transit spans for sampled traces
	// (nil means no tracing).
	TraceC *trace.Collector

	// Faults, when non-nil, injects Gilbert–Elliott burst cell loss,
	// payload corruption, and trunk flapping on switch trunks.
	Faults *faults.Plane
}

type vcID uint64

// vcSpace is one shard's VC namespace.
type vcSpace struct {
	vcs  map[vcID]*VC
	next uint64
	base uint64
}

// ensureSpace creates the VC namespace for engine e. Called only during
// single-threaded fabric construction; base embeds the shard index so
// IDs from different shards never collide.
func (f *Fabric) ensureSpace(e *sim.Engine) {
	if _, ok := f.spaces[e]; !ok {
		f.spaces[e] = &vcSpace{vcs: make(map[vcID]*VC), base: uint64(e.ShardID()+1) << 48}
	}
}

// NewFabric returns an empty fabric on engine e.
func NewFabric(e *sim.Engine) *Fabric {
	f := &Fabric{
		Engine:    e,
		switches:  make(map[string]*Switch),
		endpoints: make(map[atm.Addr]*Endpoint),
		spaces:    make(map[*sim.Engine]*vcSpace),
		Obs:       obs.NewRegistry(),
	}
	f.ensureSpace(e)
	classNames := [3]string{qos.BestEffort: "be", qos.VBR: "vbr", qos.CBR: "cbr"}
	for cls := 0; cls < 3; cls++ {
		c := qos.Class(cls)
		f.Obs.Func("fabric.cells.sent."+classNames[cls], func() uint64 { return f.ClassStats().Sent[c] })
		f.Obs.Func("fabric.cells.dropped."+classNames[cls], func() uint64 { return f.ClassStats().Dropped[c] })
	}
	f.Obs.Func("fabric.vcs.active", func() uint64 { return uint64(f.ActiveVCs()) })
	return f
}

// SealCrossShard ends build-time provisioning: from now on SetupVC
// refuses paths that leave the caller's shard. Call after the topology
// and all cross-domain circuits are provisioned, before the group runs.
func (f *Fabric) SealCrossShard() { f.sealed = true }

// AddSwitch creates a switch on the fabric's default engine.
func (f *Fabric) AddSwitch(name string) (*Switch, error) {
	return f.AddSwitchOn(name, f.Engine)
}

// AddSwitchOn creates a switch whose events run on engine e — the shard
// placement entry point for sharded topologies.
func (f *Fabric) AddSwitchOn(name string, e *sim.Engine) (*Switch, error) {
	if _, dup := f.switches[name]; dup {
		return nil, fmt.Errorf("%w: switch %s", ErrDupName, name)
	}
	s := &Switch{Name: name, fabric: f, dom: domain{eng: e}, table: make(map[tabKey]tabVal)}
	f.ensureSpace(e)
	f.switches[name] = s
	return s, nil
}

// MustAddSwitch is AddSwitch for scenario construction.
func (f *Fabric) MustAddSwitch(name string) *Switch {
	s, err := f.AddSwitch(name)
	if err != nil {
		panic(err)
	}
	return s
}

// ConnectSwitches joins two switches with a duplex trunk.
func (f *Fabric) ConnectSwitches(a, b *Switch, cfg LinkConfig) {
	ab := newTrunk(f, a, b, cfg)
	ba := newTrunk(f, b, a, cfg)
	ab.pair, ba.pair = ba, ab
	ab.alloc = atm.NewVCIAlloc(32)
	ba.alloc = ab.alloc
	a.trunks = append(a.trunks, ab)
	b.trunks = append(b.trunks, ba)
}

// StartFlapping schedules deterministic up/down flapping on every
// switch-to-switch trunk, driven by the fault plane's RNG: each duplex
// link stays up for a jittered mean-up period, drops every cell for the
// configured outage, and repeats until the cutoff, always ending in the
// up state so a quiesced run drains. Switch names are sorted so the
// flap schedule does not depend on map iteration order.
func (f *Fabric) StartFlapping(until time.Duration) {
	names := make([]string, 0, len(f.switches))
	for n := range f.switches {
		names = append(names, n)
	}
	sort.Strings(names)
	seen := make(map[*trunk]bool)
	for _, n := range names {
		for _, t := range f.switches[n].trunks {
			if _, ok := t.to.(*Switch); !ok {
				continue // endpoint links stay clean; flaps hit the backbone
			}
			if t.xeng != nil {
				// Boundary trunks stay up: a flap mutates both directions
				// of the duplex pair, and the pair's owner is another
				// shard. Chaos stays within domains.
				continue
			}
			if fp := t.faultPlane(); fp == nil || !fp.FlapEnabled() {
				continue
			}
			if seen[t] || seen[t.pair] {
				continue
			}
			seen[t] = true
			f.flapLink(t, until)
		}
	}
}

// flapLink runs one duplex link's flap cycle until the cutoff, on the
// trunk's own shard engine with the trunk's own fault plane.
func (f *Fabric) flapLink(t *trunk, until time.Duration) {
	fp := t.faultPlane()
	up := fp.NextUp()
	if t.eng.Now()+up >= until {
		return // next flap would land past the cutoff; stay up for good
	}
	t.eng.Schedule(up, func() {
		down := fp.DownFor()
		t.down, t.pair.down = true, true
		t.eng.Schedule(down, func() {
			t.down, t.pair.down = false, false
			f.flapLink(t, until)
		})
	})
}

// Attach connects an endpoint (host interface) to a switch on the
// fabric's default engine.
func (f *Fabric) Attach(addr atm.Addr, sink CellSink, sw *Switch, cfg LinkConfig) (*Endpoint, error) {
	return f.AttachOn(addr, sink, sw, cfg, f.Engine)
}

// AttachOn connects an endpoint whose events run on engine e. An
// endpoint normally shares its switch's shard; when it does not, the
// attachment trunks become shard boundaries, so their delay must fund
// the group lookahead.
func (f *Fabric) AttachOn(addr atm.Addr, sink CellSink, sw *Switch, cfg LinkConfig, e *sim.Engine) (*Endpoint, error) {
	if _, dup := f.endpoints[addr]; dup {
		return nil, fmt.Errorf("%w: endpoint %s", ErrDupName, addr)
	}
	ep := &Endpoint{Addr: addr, fabric: f, dom: domain{eng: e}, sink: sink}
	f.ensureSpace(e)
	up := newTrunk(f, ep, sw, cfg)
	down := newTrunk(f, sw, ep, cfg)
	up.pair, down.pair = down, up
	up.alloc = atm.NewVCIAlloc(32)
	down.alloc = up.alloc
	ep.uplink = up
	ep.downlink = down
	sw.trunks = append(sw.trunks, down)
	f.endpoints[addr] = ep
	return ep, nil
}

// Endpoint looks up an attachment by address.
func (f *Fabric) Endpoint(addr atm.Addr) *Endpoint { return f.endpoints[addr] }

// SetSink installs the cell receiver for an endpoint (used when the
// host interface is built after attachment).
func (ep *Endpoint) SetSink(s CellSink) { ep.sink = s }

// VC is an established simplex switched virtual circuit.
type VC struct {
	id     vcID
	fabric *Fabric
	space  *vcSpace
	From   atm.Addr
	To     atm.Addr
	QoS    qos.QoS
	// SrcVCI is the VCI the source endpoint transmits on; DstVCI is the
	// VCI cells carry when they arrive at the destination endpoint.
	SrcVCI atm.VCI
	DstVCI atm.VCI

	hops     []hop
	released bool
}

type hop struct {
	sw      *Switch
	in      *trunk
	inVCI   atm.VCI
	out     *trunk
	outVCI  atm.VCI
	bookKey uint32
}

// pathStep pairs a switch with the trunk used to reach the next element.
type pathStep struct {
	sw  *Switch
	out *trunk
}

// findPath runs BFS from the source endpoint's switch to the
// destination endpoint, returning the switch sequence and the outgoing
// trunk each uses.
func (f *Fabric) findPath(from, to *Endpoint) ([]pathStep, error) {
	first, ok := from.uplink.to.(*Switch)
	if !ok {
		return nil, ErrNoPath
	}
	type queued struct {
		sw   *Switch
		path []pathStep
	}
	visited := map[*Switch]bool{first: true}
	q := []queued{{sw: first}}
	for len(q) > 0 {
		cur := q[0]
		q = q[1:]
		for _, t := range cur.sw.trunks {
			switch nxt := t.to.(type) {
			case *Endpoint:
				if nxt == to {
					return append(cur.path, pathStep{sw: cur.sw, out: t}), nil
				}
			case *Switch:
				if !visited[nxt] {
					visited[nxt] = true
					np := append(append([]pathStep(nil), cur.path...), pathStep{sw: cur.sw, out: t})
					q = append(q, queued{sw: nxt, path: np})
				}
			}
		}
	}
	return nil, ErrNoPath
}

// SetupVC establishes a simplex switched virtual circuit from one
// endpoint to another with the given QoS, allocating a VCI on every
// hop, booking admission control on every trunk, and programming each
// switch's translation table. Virtual time advances by the per-hop
// programming cost. On any failure the partial setup is unwound.
func (f *Fabric) SetupVC(from, to atm.Addr, q qos.QoS) (*VC, error) {
	src, ok := f.endpoints[from]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotRunning, from)
	}
	dst, ok := f.endpoints[to]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotRunning, to)
	}
	if f.sealed && src.dom.eng != dst.dom.eng {
		return nil, fmt.Errorf("%w: %s -> %s", ErrCrossShard, from, to)
	}
	steps, err := f.findPath(src, dst)
	if err != nil {
		return nil, err
	}
	if f.sealed {
		// A same-shard pair could still be routed across a boundary by
		// BFS in a pathological topology; refuse rather than touch
		// another shard's tables and allocators at runtime.
		for _, st := range steps {
			if st.sw.dom.eng != src.dom.eng {
				return nil, fmt.Errorf("%w: path via %s", ErrCrossShard, st.sw.Name)
			}
		}
	}
	space := f.spaces[src.dom.eng]
	space.next++
	vc := &VC{id: vcID(space.base | space.next), fabric: f, space: space, From: from, To: to, QoS: q}

	// Trunk sequence: src.uplink, then each step's outgoing trunk.
	in := src.uplink
	inVCI, err := f.admitHop(vc, in, q)
	if err != nil {
		vc.unwind()
		return nil, err
	}
	vc.SrcVCI = inVCI
	for _, st := range steps {
		outVCI, err := f.admitHop(vc, st.out, q)
		if err != nil {
			vc.unwind()
			return nil, err
		}
		st.sw.table[tabKey{in: in, vci: inVCI}] = tabVal{out: st.out, vci: outVCI}
		vc.hops[len(vc.hops)-1].sw = st.sw
		vc.hops[len(vc.hops)-1].in = in
		vc.hops[len(vc.hops)-1].inVCI = inVCI
		in, inVCI = st.out, outVCI
	}
	vc.DstVCI = inVCI
	space.vcs[vc.id] = vc
	return vc, nil
}

// SetupCost is the virtual time a caller should charge for programming
// the circuit's switches (the signaling process sleeps this long; the
// fabric itself cannot advance the clock synchronously).
func (vc *VC) SetupCost() time.Duration {
	nswitches := 0
	for _, h := range vc.hops {
		if h.sw != nil {
			nswitches++
		}
	}
	return time.Duration(nswitches) * perHopSetupCost
}

// admitHop books one trunk and allocates a VCI on it, recording the hop
// for release.
func (f *Fabric) admitHop(vc *VC, t *trunk, q qos.QoS) (atm.VCI, error) {
	key, err := t.book.Admit(q)
	if err != nil {
		return 0, err
	}
	v, err := t.allocVCI()
	if err != nil {
		t.book.Release(key)
		return 0, err
	}
	t.classVCIs[v] = q.Class
	vc.hops = append(vc.hops, hop{out: t, outVCI: v, bookKey: key})
	return v, nil
}

// unwind releases a partially built VC.
func (vc *VC) unwind() {
	for _, h := range vc.hops {
		if h.sw != nil {
			delete(h.sw.table, tabKey{in: h.in, vci: h.inVCI})
		}
		h.out.freeVCI(h.outVCI)
		h.out.book.Release(h.bookKey)
	}
	vc.hops = nil
}

// Release tears the circuit down, freeing VCIs, bookings and table
// entries. It is idempotent.
func (vc *VC) Release() {
	if vc.released {
		return
	}
	vc.released = true
	vc.unwind()
	delete(vc.space.vcs, vc.id)
}

// Hops reports the number of trunks the circuit crosses (the paper's
// testbed path is "three hop (two switch)").
func (vc *VC) Hops() int { return len(vc.hops) }

// ActiveVCs reports the number of established circuits across every
// shard's namespace. During a sharded run this is a report-boundary
// read; mid-run it is only exact for the caller's own shard.
func (f *Fabric) ActiveVCs() int {
	n := 0
	for _, sp := range f.spaces {
		n += len(sp.vcs)
	}
	return n
}

// TrunkStats sums (sent, dropped) cells over every trunk in the fabric.
func (f *Fabric) TrunkStats() (sent, dropped uint64) {
	s := f.ClassStats()
	for cls := 0; cls < 3; cls++ {
		sent += s.Sent[cls]
		dropped += s.Dropped[cls]
	}
	return sent, dropped
}

// ClassCellStats breaks fabric cell counts down by service class
// (indexed by qos.Class), for the scheduler-protection experiments.
type ClassCellStats struct {
	Sent    [3]uint64
	Dropped [3]uint64
}

// LossRate reports the drop fraction for one class (0 when idle).
func (s ClassCellStats) LossRate(c qos.Class) float64 {
	total := s.Sent[c] + s.Dropped[c]
	if total == 0 {
		return 0
	}
	return float64(s.Dropped[c]) / float64(total)
}

// RegisterTSeries tracks every trunk's congestion signals in st:
// cells/drops (per-tick rates), utilization in basis points (cell delta
// x serialization time / tick interval), and queue depth with the
// between-tick high-water captured by the qPeak hook armed here.
// Enumeration is sorted (switch names, then endpoint addresses) so
// series registration order — and therefore the export — is
// deterministic; switch trunk lists already include endpoint downlinks,
// so only uplinks need the endpoint pass.
func (f *Fabric) RegisterTSeries(st *tseries.Store) {
	f.RegisterTSeriesOwned(st, nil)
}

// RegisterTSeriesOwned is RegisterTSeries restricted to trunks whose
// sending element runs on engine own (nil means every trunk). A trunk's
// counters and queues are mutated only by its sending shard, so a
// per-shard store scraping only owned trunks reads race-free.
func (f *Fabric) RegisterTSeriesOwned(st *tseries.Store, own *sim.Engine) {
	if st == nil {
		return
	}
	names := make([]string, 0, len(f.switches))
	for n := range f.switches {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, t := range f.switches[n].trunks {
			if own != nil && t.eng != own {
				continue
			}
			f.trackTrunk(st, t)
		}
	}
	addrs := make([]string, 0, len(f.endpoints))
	for a := range f.endpoints {
		addrs = append(addrs, string(a))
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		up := f.endpoints[atm.Addr(a)].uplink
		if own != nil && up.eng != own {
			continue
		}
		f.trackTrunk(st, up)
	}
}

func (f *Fabric) trackTrunk(st *tseries.Store, t *trunk) {
	prefix := "fabric.trunk." + t.from.name() + ">" + t.to.name() + "."
	st.TrackRateFunc(prefix+"cells", func() uint64 { return t.Sent }, 0, 0)
	st.TrackRateFunc(prefix+"drops", func() uint64 { return t.Dropped }, 0, 0)
	if t.ser > 0 && st.Interval() > 0 {
		// 10000 x (cells x ser) / interval = line utilization in basis
		// points, an integer so exports stay byte-exact.
		st.TrackRateFunc(prefix+"util_bp", func() uint64 { return t.Sent },
			int64(t.ser)*10000, int64(st.Interval()))
	}
	if t.qPeak == nil {
		t.qPeak = &tseries.Peak{}
	}
	peak := t.qPeak
	st.TrackGaugeFunc(prefix+"qdepth", func() (int64, int64) {
		depth := int64(t.queues[0].Len() + t.queues[1].Len() + t.queues[2].Len())
		hi := peak.Take()
		if depth > hi {
			hi = depth
		}
		return depth, hi
	})
}

// ClassStats sums per-class cell counts over every trunk.
func (f *Fabric) ClassStats() ClassCellStats {
	var out ClassCellStats
	seen := map[*trunk]bool{}
	visit := func(ts []*trunk) {
		for _, t := range ts {
			if seen[t] {
				continue
			}
			seen[t] = true
			for cls := 0; cls < 3; cls++ {
				out.Sent[cls] += t.perClass[cls]
				out.Dropped[cls] += t.perClassDrop[cls]
			}
		}
	}
	for _, sw := range f.switches {
		visit(sw.trunks)
	}
	for _, ep := range f.endpoints {
		visit([]*trunk{ep.uplink, ep.downlink})
	}
	return out
}
