package xswitch

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"xunet/internal/atm"
	"xunet/internal/qos"
	"xunet/internal/sim"
)

// collector is a CellSink recording arrivals.
type collector struct {
	e     *sim.Engine
	cells []atm.Cell
	times []time.Duration
}

func (c *collector) ReceiveCell(cell atm.Cell) {
	c.cells = append(c.cells, cell)
	c.times = append(c.times, c.e.Now())
}

// testbed builds the paper's 3-hop/2-switch path with two endpoints.
func testbed(t *testing.T) (*sim.Engine, *Fabric, *Endpoint, *Endpoint, *collector, *collector) {
	t.Helper()
	e := sim.New(1)
	f := NewFabric(e)
	swA, swB := Testbed(f)
	ca, cb := &collector{e: e}, &collector{e: e}
	epA, err := f.Attach("mh.rt", ca, swA, TAXI())
	if err != nil {
		t.Fatal(err)
	}
	epB, err := f.Attach("ucb.rt", cb, swB, TAXI())
	if err != nil {
		t.Fatal(err)
	}
	return e, f, epA, epB, ca, cb
}

func TestSetupVCThreeHops(t *testing.T) {
	_, f, _, _, _, _ := testbed(t)
	vc, err := f.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Hops() != 3 {
		t.Fatalf("hops = %d, want 3 (paper's testbed)", vc.Hops())
	}
	if vc.SetupCost() != 2*perHopSetupCost {
		t.Fatalf("setup cost = %v", vc.SetupCost())
	}
	if f.ActiveVCs() != 1 {
		t.Fatalf("active VCs = %d", f.ActiveVCs())
	}
	vc.Release()
	if f.ActiveVCs() != 0 {
		t.Fatalf("active VCs after release = %d", f.ActiveVCs())
	}
	vc.Release() // idempotent
}

func TestCellDeliveryAndTranslation(t *testing.T) {
	e, f, epA, _, _, cb := testbed(t)
	vc, err := f.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}
	c := atm.Cell{Header: atm.Header{VCI: vc.SrcVCI, PTI: atm.PTIUserData1}}
	c.Payload[0] = 0xAB
	epA.SendCell(c)
	e.Run()
	if len(cb.cells) != 1 {
		t.Fatalf("delivered %d cells", len(cb.cells))
	}
	got := cb.cells[0]
	if got.VCI != vc.DstVCI {
		t.Fatalf("arrived on %v, want %v", got.VCI, vc.DstVCI)
	}
	if got.Payload[0] != 0xAB || !got.EndOfFrame() {
		t.Fatal("payload or PTI corrupted in transit")
	}
}

func TestUnknownVCIDropped(t *testing.T) {
	e, f, epA, _, _, cb := testbed(t)
	epA.SendCell(atm.Cell{Header: atm.Header{VCI: 999}})
	e.Run()
	if len(cb.cells) != 0 {
		t.Fatal("cell on unprogrammed VCI delivered")
	}
	var unroutable uint64
	for _, sw := range f.switches {
		unroutable += sw.Unroutable
	}
	if unroutable != 1 {
		t.Fatalf("unroutable = %d", unroutable)
	}
}

func TestCellOrderPreserved(t *testing.T) {
	e, f, epA, _, _, cb := testbed(t)
	vc, _ := f.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
	const n = 100
	for i := 0; i < n; i++ {
		c := atm.Cell{Header: atm.Header{VCI: vc.SrcVCI}}
		c.Payload[0] = byte(i)
		epA.SendCell(c)
	}
	e.Run()
	if len(cb.cells) != n {
		t.Fatalf("delivered %d of %d", len(cb.cells), n)
	}
	for i, c := range cb.cells {
		if c.Payload[0] != byte(i) {
			t.Fatalf("cell %d out of order", i)
		}
	}
}

func TestTwoVCsGetDistinctVCIs(t *testing.T) {
	_, f, _, _, _, _ := testbed(t)
	vc1, _ := f.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
	vc2, _ := f.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
	if vc1.SrcVCI == vc2.SrcVCI {
		t.Fatal("source VCIs collide")
	}
	if vc1.DstVCI == vc2.DstVCI {
		t.Fatal("destination VCIs collide")
	}
}

func TestDuplexVCIsDoNotCollideAtEndpoint(t *testing.T) {
	// A machine's PCB table is indexed by VCI alone, so a VC it sends
	// on and a VC it receives on must never share a number.
	_, f, _, _, _, _ := testbed(t)
	seen := map[atm.VCI]bool{}
	for i := 0; i < 10; i++ {
		ab, err := f.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := f.SetupVC("ucb.rt", "mh.rt", qos.BestEffortQoS)
		if err != nil {
			t.Fatal(err)
		}
		// At mh.rt: sends on ab.SrcVCI, receives on ba.DstVCI.
		for _, v := range []atm.VCI{ab.SrcVCI, ba.DstVCI} {
			if seen[v] {
				t.Fatalf("VCI %v reused at mh.rt", v)
			}
			seen[v] = true
		}
	}
}

func TestAdmissionControl(t *testing.T) {
	_, f, _, _, _, _ := testbed(t)
	// DS3 trunk is 45 Mb/s = 45000 kb/s. Fill it with CBR.
	var vcs []*VC
	for i := 0; i < 4; i++ {
		vc, err := f.SetupVC("mh.rt", "ucb.rt", qos.QoS{Class: qos.CBR, BandwidthKbs: 10000})
		if err != nil {
			t.Fatalf("vc %d: %v", i, err)
		}
		vcs = append(vcs, vc)
	}
	// A fifth 10 Mb/s CBR circuit exceeds 45 Mb/s.
	if _, err := f.SetupVC("mh.rt", "ucb.rt", qos.QoS{Class: qos.CBR, BandwidthKbs: 10000}); !errors.Is(err, qos.ErrAdmission) {
		t.Fatalf("admission err = %v", err)
	}
	// Best effort still admitted.
	if _, err := f.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS); err != nil {
		t.Fatalf("best effort rejected: %v", err)
	}
	// Releasing one reservation frees capacity.
	vcs[0].Release()
	if _, err := f.SetupVC("mh.rt", "ucb.rt", qos.QoS{Class: qos.CBR, BandwidthKbs: 10000}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestFailedSetupLeavesNoResidue(t *testing.T) {
	_, f, _, _, _, _ := testbed(t)
	big := qos.QoS{Class: qos.CBR, BandwidthKbs: 40000}
	vc1, err := f.SetupVC("mh.rt", "ucb.rt", big)
	if err != nil {
		t.Fatal(err)
	}
	// Second big circuit fails at the DS3; the TAXI hops already
	// admitted must be unwound.
	if _, err := f.SetupVC("mh.rt", "ucb.rt", big); err == nil {
		t.Fatal("oversubscription admitted")
	}
	vc1.Release()
	// Full capacity must now be available again on every hop.
	vc2, err := f.SetupVC("mh.rt", "ucb.rt", big)
	if err != nil {
		t.Fatalf("resetup failed, leaked bookings: %v", err)
	}
	vc2.Release()
}

func TestNoPath(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	swA := f.MustAddSwitch("a")
	swB := f.MustAddSwitch("b") // not connected
	f.Attach("x", nil, swA, TAXI())
	f.Attach("y", nil, swB, TAXI())
	if _, err := f.SetupVC("x", "y", qos.BestEffortQoS); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownEndpoint(t *testing.T) {
	_, f, _, _, _, _ := testbed(t)
	if _, err := f.SetupVC("mh.rt", "nowhere.rt", qos.BestEffortQoS); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("err = %v", err)
	}
	if _, err := f.SetupVC("nowhere.rt", "mh.rt", qos.BestEffortQoS); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateNames(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	f.MustAddSwitch("a")
	if _, err := f.AddSwitch("a"); !errors.Is(err, ErrDupName) {
		t.Fatalf("err = %v", err)
	}
	sw := f.MustAddSwitch("b")
	f.Attach("ep", nil, sw, TAXI())
	if _, err := f.Attach("ep", nil, sw, TAXI()); !errors.Is(err, ErrDupName) {
		t.Fatalf("err = %v", err)
	}
}

func TestQueueOverflowDropsCells(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	sw := f.MustAddSwitch("s")
	sink := &collector{e: e}
	// Tiny queue and a slow trunk to force overflow.
	slow := LinkConfig{RateBps: 1_000_000, QueueCells: 4}
	epA, _ := f.Attach("a", nil, sw, TAXI())
	_, _ = f.Attach("b", sink, sw, slow)
	vc, err := f.SetupVC("a", "b", qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		epA.SendCell(atm.Cell{Header: atm.Header{VCI: vc.SrcVCI}})
	}
	e.Run()
	sent, dropped := f.TrunkStats()
	if dropped == 0 {
		t.Fatal("no drops despite overflow")
	}
	if len(sink.cells) == 0 || len(sink.cells) >= 100 {
		t.Fatalf("delivered %d cells", len(sink.cells))
	}
	if sent == 0 {
		t.Fatal("no sent cells counted")
	}
}

func TestWRRFavorsCBRUnderCongestion(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	sw := f.MustAddSwitch("s")
	sink := &collector{e: e}
	slow := LinkConfig{RateBps: 2_000_000, QueueCells: 2000}
	epA, _ := f.Attach("a", nil, sw, TAXI())
	_, _ = f.Attach("b", sink, sw, slow)
	cbr, err := f.SetupVC("a", "b", qos.QoS{Class: qos.CBR, BandwidthKbs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	be, err := f.SetupVC("a", "b", qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}
	// Offer both classes an equal burst; watch who finishes first.
	const n = 400
	for i := 0; i < n; i++ {
		epA.SendCell(atm.Cell{Header: atm.Header{VCI: be.SrcVCI}})
		epA.SendCell(atm.Cell{Header: atm.Header{VCI: cbr.SrcVCI}})
	}
	e.Run()
	if len(sink.cells) != 2*n {
		t.Fatalf("delivered %d of %d", len(sink.cells), 2*n)
	}
	// Completion time of the last CBR cell must beat the last BE cell.
	var lastCBR, lastBE time.Duration
	for i, c := range sink.cells {
		if c.VCI == cbr.DstVCI {
			lastCBR = sink.times[i]
		} else {
			lastBE = sink.times[i]
		}
	}
	if lastCBR >= lastBE {
		t.Fatalf("CBR finished at %v, BE at %v: scheduler not prioritizing", lastCBR, lastBE)
	}
}

func TestXunetTopology(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	sw := Xunet(f)
	if len(sw) != 5 {
		t.Fatalf("sites = %d", len(sw))
	}
	// Attach a router at every site and verify full reachability.
	for s, swi := range sw {
		if _, err := f.Attach(atm.Addr(SiteRouterAddr(s)), nil, swi, TAXI()); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range XunetSites() {
		for _, b := range XunetSites() {
			if a == b {
				continue
			}
			vc, err := f.SetupVC(atm.Addr(SiteRouterAddr(a)), atm.Addr(SiteRouterAddr(b)), qos.BestEffortQoS)
			if err != nil {
				t.Fatalf("%s -> %s: %v", a, b, err)
			}
			vc.Release()
		}
	}
}

func TestCrossCountryDelayDominatesPropagation(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	sw := Xunet(f)
	sinkB := &collector{e: e}
	fA, _ := f.Attach("mh.rt", nil, sw[MurrayHill], TAXI())
	_, _ = f.Attach("ucb.rt", sinkB, sw[Berkeley], TAXI())
	vc, err := f.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}
	fA.SendCell(atm.Cell{Header: atm.Header{VCI: vc.SrcVCI}})
	e.Run()
	if len(sinkB.cells) != 1 {
		t.Fatal("cross-country cell lost")
	}
	// MH -> Illinois (6ms) -> Berkeley (9ms) plus attachment delays.
	if sinkB.times[0] < 15*time.Millisecond {
		t.Fatalf("arrival %v, want >= 15ms of propagation", sinkB.times[0])
	}
}

// Property: setup/release of any interleaving of circuits conserves VCI
// space and admission bookings exactly.
func TestQuickSetupReleaseConservation(t *testing.T) {
	f2 := func(ops []bool) bool {
		e := sim.New(7)
		fab := NewFabric(e)
		swA, swB := Testbed(fab)
		fab.Attach("a", nil, swA, TAXI())
		fab.Attach("b", nil, swB, TAXI())
		var open []*VC
		for _, setup := range ops {
			if setup {
				vc, err := fab.SetupVC("a", "b", qos.QoS{Class: qos.CBR, BandwidthKbs: 5000})
				if err == nil {
					open = append(open, vc)
				}
			} else if len(open) > 0 {
				open[0].Release()
				open = open[1:]
			}
		}
		for _, vc := range open {
			vc.Release()
		}
		if fab.ActiveVCs() != 0 {
			return false
		}
		// Everything released: a full-rate circuit must fit again.
		vc, err := fab.SetupVC("a", "b", qos.QoS{Class: qos.CBR, BandwidthKbs: 45000})
		if err != nil {
			return false
		}
		vc.Release()
		return true
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
