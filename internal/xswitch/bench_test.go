package xswitch

import (
	"testing"
	"time"

	"xunet/internal/atm"
	"xunet/internal/qos"
	"xunet/internal/sim"
)

// Wall-clock benchmarks for the fabric substrate: cells switched per
// second of real time and circuit setup/teardown rate bound the scale
// of runnable scenarios.

func benchFabric(b *testing.B) (*sim.Engine, *Fabric, *Endpoint, *collector, *VC) {
	b.Helper()
	e := sim.New(1)
	f := NewFabric(e)
	swA, swB := Testbed(f)
	sink := &collector{e: e}
	epA, err := f.Attach("a", nil, swA, TAXI())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Attach("b", sink, swB, TAXI()); err != nil {
		b.Fatal(err)
	}
	vc, err := f.SetupVC("a", "b", qos.BestEffortQoS)
	if err != nil {
		b.Fatal(err)
	}
	return e, f, epA, sink, vc
}

func BenchmarkCellSwitching(b *testing.B) {
	e, _, epA, sink, vc := benchFabric(b)
	c := atm.Cell{Header: atm.Header{VCI: vc.SrcVCI}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epA.SendCell(c)
		if i%1024 == 1023 {
			// Advance virtual time enough to drain the burst through
			// the slowest hop (1024 cells ≈ 9.7 ms on the 45 Mb/s DS3),
			// keeping queues below their limits.
			e.RunFor(12 * time.Millisecond)
		}
	}
	e.Run()
	b.StopTimer()
	if len(sink.cells) != b.N {
		b.Fatalf("delivered %d of %d", len(sink.cells), b.N)
	}
}

func BenchmarkVCSetupRelease(b *testing.B) {
	e := sim.New(1)
	f := NewFabric(e)
	swA, swB := Testbed(f)
	f.Attach("a", nil, swA, TAXI())
	f.Attach("b", nil, swB, TAXI())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vc, err := f.SetupVC("a", "b", qos.QoS{Class: qos.CBR, BandwidthKbs: 100})
		if err != nil {
			b.Fatal(err)
		}
		vc.Release()
	}
}

func BenchmarkFrameAcrossTestbed(b *testing.B) {
	// One 1500-byte frame = 32 cells across the 3-hop path.
	e, _, epA, sink, vc := benchFabric(b)
	cells := make([]atm.Cell, 32)
	for i := range cells {
		cells[i].VCI = vc.SrcVCI
		if i == len(cells)-1 {
			cells[i].PTI = atm.PTIUserData1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cells {
			epA.SendCell(cells[j])
		}
		e.Run()
	}
	b.StopTimer()
	if len(sink.cells) != 32*b.N {
		b.Fatalf("delivered %d", len(sink.cells))
	}
}
