package xswitch

import (
	"testing"

	"xunet/internal/atm"
	"xunet/internal/qos"
	"xunet/internal/sim"
)

// Per-class protection experiments for the ref [17]-style scheduler:
// under overload, reserved classes keep their cells while best effort
// absorbs the loss.

func TestClassProtectionUnderOverload(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	sw := f.MustAddSwitch("s")
	sink := &collector{e: e}
	// A slow bottleneck trunk with small per-class queues.
	slow := LinkConfig{RateBps: 5_000_000, QueueCells: 64}
	epA, _ := f.Attach("a", nil, sw, TAXI())
	_, _ = f.Attach("b", sink, sw, slow)

	cbr, err := f.SetupVC("a", "b", qos.QoS{Class: qos.CBR, BandwidthKbs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	vbr, err := f.SetupVC("a", "b", qos.QoS{Class: qos.VBR, BandwidthKbs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	be, err := f.SetupVC("a", "b", qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}

	// CBR offers traffic conformant to its 2 Mb/s reservation; VBR
	// slightly exceeds its effective share; best effort floods. The
	// aggregate far exceeds the 5 Mb/s bottleneck, so the weighted
	// round robin must choose — and a conformant reserved class must
	// not lose a cell.
	for round := 0; round < 400; round++ {
		epA.SendCell(atm.Cell{Header: atm.Header{VCI: cbr.SrcVCI}}) // ≈2.1 Mb/s
		epA.SendCell(atm.Cell{Header: atm.Header{VCI: vbr.SrcVCI}}) // ≈2.1 Mb/s
		for burst := 0; burst < 6; burst++ {
			epA.SendCell(atm.Cell{Header: atm.Header{VCI: be.SrcVCI}}) // ≈12.7 Mb/s
		}
		e.RunFor(200 * 1000) // 200 µs rounds
	}
	e.Run()

	stats := f.ClassStats()
	if stats.LossRate(qos.CBR) != 0 {
		t.Fatalf("CBR lost cells under overload: %.3f", stats.LossRate(qos.CBR))
	}
	if stats.LossRate(qos.BestEffort) == 0 {
		t.Fatal("best effort lost nothing despite 10x overload")
	}
	// VBR sits between the two.
	if stats.LossRate(qos.VBR) > stats.LossRate(qos.BestEffort) {
		t.Fatalf("VBR (%.3f) lost more than best effort (%.3f)",
			stats.LossRate(qos.VBR), stats.LossRate(qos.BestEffort))
	}
	t.Logf("loss: cbr=%.3f vbr=%.3f be=%.3f",
		stats.LossRate(qos.CBR), stats.LossRate(qos.VBR), stats.LossRate(qos.BestEffort))
}

func TestClassStatsAccounting(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	swA, swB := Testbed(f)
	sink := &collector{e: e}
	epA, _ := f.Attach("a", nil, swA, TAXI())
	_, _ = f.Attach("b", sink, swB, TAXI())
	vc, _ := f.SetupVC("a", "b", qos.QoS{Class: qos.CBR, BandwidthKbs: 100})
	for i := 0; i < 10; i++ {
		epA.SendCell(atm.Cell{Header: atm.Header{VCI: vc.SrcVCI}})
	}
	e.Run()
	stats := f.ClassStats()
	// 10 cells × 3 trunks on the path, all CBR.
	if stats.Sent[qos.CBR] != 30 {
		t.Fatalf("CBR sent = %d, want 30", stats.Sent[qos.CBR])
	}
	if stats.Sent[qos.BestEffort] != 0 || stats.Sent[qos.VBR] != 0 {
		t.Fatalf("other classes saw traffic: %+v", stats)
	}
	sent, dropped := f.TrunkStats()
	if sent != 30 || dropped != 0 {
		t.Fatalf("TrunkStats = %d/%d", sent, dropped)
	}
	if stats.LossRate(qos.VBR) != 0 {
		t.Fatal("idle class loss rate not zero")
	}
}
