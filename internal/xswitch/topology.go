package xswitch

import "time"

// Topology construction helpers rebuilding the networks the paper ran
// on. Endpoints are attached later (the machines' host interfaces are
// built by the kernel layer); these helpers create switches and trunks
// and return the switch each site's router attaches to.

// Testbed builds the measurement testbed of §9: a three hop (two
// switch) ATM path between two router attachment points.
//
//	routerA --- swA --- swB --- routerB
//
// It returns the fabric and the two attachment switches.
func Testbed(f *Fabric) (swA, swB *Switch) {
	swA = f.MustAddSwitch("sw-A")
	swB = f.MustAddSwitch("sw-B")
	f.ConnectSwitches(swA, swB, DS3(2*time.Millisecond))
	return swA, swB
}

// XunetSite names the five Xunet 2 sites of the paper's Figure 0 (§1):
// Murray Hill plus four universities.
type XunetSite string

// The Xunet 2 sites.
const (
	MurrayHill XunetSite = "mh"
	Berkeley   XunetSite = "ucb"
	Illinois   XunetSite = "uiuc"
	Wisconsin  XunetSite = "wisc"
	Rutgers    XunetSite = "rutgers"
)

// XunetSites lists all five sites.
func XunetSites() []XunetSite {
	return []XunetSite{MurrayHill, Berkeley, Illinois, Wisconsin, Rutgers}
}

// Xunet builds the nationwide Xunet 2 backbone: one switch per site,
// DS3 long-distance trunks with coast-to-coast propagation delays, and
// a 622 Mb/s optically-amplified trunk on the Illinois–Murray Hill
// segment (the paper: "DS3 facilities (at 45Mbps) as well as optically
// amplified lines operating at 622 Mbps").
//
// It returns the per-site switch map; routers attach per site.
func Xunet(f *Fabric) map[XunetSite]*Switch {
	sw := make(map[XunetSite]*Switch, 5)
	for _, s := range XunetSites() {
		sw[s] = f.MustAddSwitch("sw-" + string(s))
	}
	// Approximate one-way propagation delays.
	f.ConnectSwitches(sw[MurrayHill], sw[Rutgers], DS3(1*time.Millisecond))
	f.ConnectSwitches(sw[MurrayHill], sw[Illinois], OC12(6*time.Millisecond))
	f.ConnectSwitches(sw[Illinois], sw[Wisconsin], DS3(2*time.Millisecond))
	f.ConnectSwitches(sw[Illinois], sw[Berkeley], DS3(9*time.Millisecond))
	return sw
}

// SiteRouterAddr is the conventional ATM address of a site's router,
// in the paper's "mh.rt" style.
func SiteRouterAddr(s XunetSite) string { return string(s) + ".rt" }
