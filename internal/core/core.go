// Package core assembles the paper's contribution into deployable
// units: a Stack is one machine running the native-mode ATM protocol
// suite — the simulated kernel with the /dev/anand pseudo-device, the
// PF_XUNET protocol family, the IPPROTO_ATM encapsulation layer, and
// (on routers) the Hobbit board attached to the ATM fabric.
//
// Terminology follows §2 of the paper: machines with an ATM interface
// are routers; machines that reach the ATM network only over IP are
// hosts. "If a call originates from machine A, via routers B and C to
// machine D, we call A the host, B the router, C the remote router, and
// D the remote host."
package core

import (
	"fmt"

	"xunet/internal/atm"
	"xunet/internal/hobbit"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/pfxunet"
	"xunet/internal/protoatm"
	"xunet/internal/sim"
	"xunet/internal/xswitch"
)

// Stack is one machine's native-mode protocol stack.
type Stack struct {
	// M is the machine: kernel, processes, descriptors, pseudo-device.
	M *kern.Machine
	// PF is the PF_XUNET protocol family.
	PF *pfxunet.Family
	// ATM is the IPPROTO_ATM encapsulation layer.
	ATM *protoatm.Layer
	// Board is the Hobbit host interface; nil on hosts.
	Board *hobbit.Board
	// Addr is the machine's ATM address ("mh.rt" style; hosts carry a
	// pseudo-address used as the encapsulation header's source field).
	Addr atm.Addr
	// Router reports whether this stack has an ATM interface.
	Router bool
}

// RouterConfig describes a router stack.
type RouterConfig struct {
	Name          string
	Addr          atm.Addr
	IP            *memnet.Node
	Fabric        *xswitch.Fabric
	Switch        *xswitch.Switch
	Attach        xswitch.LinkConfig // zero value means TAXI()
	DeviceBuffers int                // zero means kern.DefaultDeviceBuffers
	FDTableSize   int                // zero means kern.DefaultFDTableSize
}

// NewRouter builds a router: full stack plus a Hobbit board attached to
// the fabric.
func NewRouter(e *sim.Engine, cm sim.CostModel, cfg RouterConfig) (*Stack, error) {
	if cfg.Attach == (xswitch.LinkConfig{}) {
		cfg.Attach = xswitch.TAXI()
	}
	m := kern.NewMachine(cfg.Name, e, cm, cfg.IP)
	if cfg.FDTableSize > 0 {
		m.FDTableSize = cfg.FDTableSize
	}
	m.InstallPseudoDev(cfg.DeviceBuffers)
	ep, err := cfg.Fabric.AttachOn(cfg.Addr, nil, cfg.Switch, cfg.Attach, e)
	if err != nil {
		return nil, fmt.Errorf("core: attach %s: %w", cfg.Addr, err)
	}
	board := hobbit.NewBoard(ep)
	board.Instrument(e.Now, m.Obs)
	ep.SetSink(board)
	m.Orc.AttachBoard(board)
	s := &Stack{
		M:      m,
		PF:     pfxunet.New(m),
		ATM:    protoatm.New(m, cfg.Addr, protoatm.RouterMode),
		Board:  board,
		Addr:   cfg.Addr,
		Router: true,
	}
	return s, nil
}

// HostConfig describes a host stack (no ATM interface).
type HostConfig struct {
	Name          string
	Addr          atm.Addr // pseudo ATM address for the encap header
	IP            *memnet.Node
	RouterIP      memnet.IPAddr // target router for IPPROTO_ATM
	DeviceBuffers int
	FDTableSize   int
}

// NewHost builds a host: the same PF_XUNET stack, with the Orc driver's
// output wired to the encapsulation layer instead of a board, exactly
// as §7.4 ported the router implementation to non-ATM hosts.
func NewHost(e *sim.Engine, cm sim.CostModel, cfg HostConfig) *Stack {
	m := kern.NewMachine(cfg.Name, e, cm, cfg.IP)
	if cfg.FDTableSize > 0 {
		m.FDTableSize = cfg.FDTableSize
	}
	m.InstallPseudoDev(cfg.DeviceBuffers)
	s := &Stack{
		M:      m,
		PF:     pfxunet.New(m),
		ATM:    protoatm.New(m, cfg.Addr, protoatm.HostMode),
		Addr:   cfg.Addr,
		Router: false,
	}
	s.ATM.ConfigureRouter(cfg.RouterIP)
	return s
}

// Spawn starts an application process on this stack's machine.
func (s *Stack) Spawn(name string, body func(p *kern.Proc)) *kern.Proc {
	return s.M.Spawn(name, body)
}
