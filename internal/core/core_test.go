package core_test

import (
	"testing"

	"xunet/internal/core"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/sim"
	"xunet/internal/xswitch"
)

func TestNewRouterAssembly(t *testing.T) {
	e := sim.New(1)
	cm := sim.DefaultCostModel()
	fab := xswitch.NewFabric(e)
	sw := fab.MustAddSwitch("sw")
	n := memnet.New(e)
	ip := n.MustAddNode("rt", memnet.IP4(10, 0, 0, 1))
	r, err := core.NewRouter(e, cm, core.RouterConfig{
		Name: "rt", Addr: "mh.rt", IP: ip, Fabric: fab, Switch: sw,
		DeviceBuffers: 42, FDTableSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Router || r.Board == nil {
		t.Fatal("router has no board")
	}
	if r.M.Dev == nil || r.M.Dev.Capacity() != 42 {
		t.Fatalf("pseudo-device capacity = %d", r.M.Dev.Capacity())
	}
	if r.M.FDTableSize != 64 {
		t.Fatalf("fd table = %d", r.M.FDTableSize)
	}
	if r.M.Orc.Board() != r.Board {
		t.Fatal("Orc not attached to board")
	}
	if fab.Endpoint("mh.rt") == nil {
		t.Fatal("endpoint not attached to fabric")
	}
	// Duplicate attachment must fail cleanly.
	if _, err := core.NewRouter(e, cm, core.RouterConfig{
		Name: "rt2", Addr: "mh.rt", IP: ip, Fabric: fab, Switch: sw,
	}); err == nil {
		t.Fatal("duplicate ATM address accepted")
	}
}

func TestNewHostAssembly(t *testing.T) {
	e := sim.New(1)
	cm := sim.DefaultCostModel()
	n := memnet.New(e)
	ip := n.MustAddNode("h", memnet.IP4(10, 0, 0, 10))
	h := core.NewHost(e, cm, core.HostConfig{
		Name: "h", Addr: "mh.h1", IP: ip, RouterIP: memnet.IP4(10, 0, 0, 1),
	})
	if h.Router || h.Board != nil {
		t.Fatal("host has a board")
	}
	if h.ATM.RouterIP() != memnet.IP4(10, 0, 0, 1) {
		t.Fatal("router IP not configured")
	}
	if h.M.Dev == nil {
		t.Fatal("no pseudo-device")
	}
	if h.M.Orc.Board() != nil {
		t.Fatal("host Orc has a board")
	}
}

func TestSpawnRunsOnMachine(t *testing.T) {
	e := sim.New(1)
	n := memnet.New(e)
	ip := n.MustAddNode("h", memnet.IP4(1, 0, 0, 1))
	h := core.NewHost(e, sim.DefaultCostModel(), core.HostConfig{Name: "h", Addr: "h", IP: ip})
	var pid uint32
	h.Spawn("app", func(p *kern.Proc) { pid = p.PID })
	e.Run()
	if pid == 0 {
		t.Fatal("process did not run")
	}
}
